"""Tests for the exact counter-ambiguity analysis on paper examples."""

from repro.analysis.exact import analyze_exact, check_instance_exact
from repro.analysis.result import Method
from repro.regex.parser import parse
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify


def analyze(pattern: str, **kwargs):
    parsed = parse(pattern)
    return analyze_exact(simplify(parsed.search_ast()), **kwargs)


class TestPaperExamples:
    def test_example_22_r1(self):
        """r1 = Sigma* s1 s2{n}: the trailing run after Sigma* is
        ambiguous when s1 overlaps s2 (paper: s1=[ab], s2=[^a])."""
        result = analyze(r"[ab][^a]{4}")
        assert result.ambiguous

    def test_example_22_r3_split_verdicts(self):
        """r3 = s1{m} Sigma* s2{n}: anchored first instance is
        unambiguous, second is ambiguous (Section 3.3's example)."""
        parsed = parse(r"^a{4}.*b{5}")
        result = analyze_exact(simplify(parsed.search_ast()))
        first, second = result.instances
        assert not first.ambiguous
        assert second.ambiguous

    def test_example_32(self):
        """Sigma* s{2} is counter-ambiguous (Example 3.2)."""
        result = analyze(r"x{2}")
        assert result.ambiguous

    def test_example_34_family_unambiguous(self):
        """Sigma*(~s1 s1{n} + ~s2 s2{n}) is counter-unambiguous."""
        result = analyze(r"[^a]a{6}|[^b]b{6}")
        assert not result.ambiguous

    def test_anchored_counting_unambiguous(self):
        result = analyze(r"^(ab){3,7}c")
        assert not result.ambiguous

    def test_no_counting_trivial(self):
        result = analyze("abc")
        assert not result.has_counting
        assert not result.ambiguous
        assert result.pairs_created == 0


class TestPerInstance:
    def test_check_single_instance(self):
        ast = simplify(parse(r"^a{4}.*b{5}").search_ast())
        first = check_instance_exact(ast, 0)
        second = check_instance_exact(ast, 1)
        assert not first.ambiguous
        assert second.ambiguous
        assert first.method is Method.EXACT

    def test_witness_recorded_on_demand(self):
        ast = simplify(parse(r".*x{3}").search_ast())
        without = check_instance_exact(ast, 0)
        with_w = check_instance_exact(ast, 0, record_witness=True)
        assert without.witness is None
        assert with_w.witness is not None

    def test_elapsed_and_pairs_populated(self):
        result = analyze(r"[^a]a{10}")
        (inst,) = result.instances
        assert inst.pairs_created > 0
        assert inst.elapsed_s >= 0


class TestOverlapSensitivity:
    """Ambiguity hinges on predicate overlaps, not bounds."""

    def test_disjoint_guard_saves_it(self):
        assert not analyze(r"[^a]a{8}").ambiguous

    def test_overlapping_guard_breaks_it(self):
        assert analyze(r"[ab]a{8}").ambiguous

    def test_wildcard_gap_ambiguous(self):
        assert analyze(r"foo.{4,12}bar").ambiguous

    def test_long_literal_prefix_with_narrow_gap(self):
        """A gap narrower than its non-self-overlapping prefix is
        genuinely unambiguous (two entries cannot coexist in it)."""
        assert not analyze(r"wxyz.{2}").ambiguous

    def test_long_literal_prefix_with_wide_gap(self):
        """Widening the same gap beyond the prefix length flips it."""
        assert analyze(r"wxyz.{2,12}").ambiguous
