"""End-to-end match-server suite: real sockets, concurrent clients.

Acceptance (ISSUE 5): >= 64 concurrent connections with per-connection
match streams identical to offline
:class:`~repro.session.MultiStreamScanner` results; interleaved tagged
streams; mid-stream disconnects leave other sessions intact; graceful
shutdown drains queued work.

Every test runs a real :class:`~repro.serve.MatchServer` on an
ephemeral 127.0.0.1 port inside one event loop (no pytest-asyncio
dependency; ``run()`` wraps ``asyncio.run`` with a hang guard).
"""

import asyncio

import pytest

from repro.engine.backends import available_backends
from repro.engine.parallel import FeedPool, ShardedMatcher
from repro.matching import RulesetMatcher
from repro.serve import MatchClient, MatchServer, ServerError
from repro.session import MultiStreamScanner

RULES = [
    ("hit", r"abc"),
    ("num", r"[0-9]{3,5}"),
    ("tail", r"xyz$"),
    ("ctr", r"[^a]a{2,4}b"),
]

#: chunk repertoire with cross-chunk matches, counters, and $-anchors
CHUNKS = [b"za", b"bc", b"ab", b"c123", b"45xyz", b"..aaab", b"9999", b"xy", b"z"]


def run(coro):
    """Drive one test coroutine with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def traffic_for(index: int) -> list[bytes]:
    """A deterministic per-stream chunk sequence (varied but repeatable)."""
    length = index % 5 + 2
    return [CHUNKS[(index + j) % len(CHUNKS)] for j in range(length)]


def offline_events(matcher, pairs, engine=None):
    """What an offline MultiStreamScanner emits for the same traffic:
    ``{tag: [(rule, end), ...]}`` in emission order."""
    mux = MultiStreamScanner(matcher, engine=engine)
    events: dict[str, list] = {}
    for tag, chunk in pairs:
        events.setdefault(tag, [])
        for match in mux.feed(tag, chunk):
            events[tag].append((match.rule, match.end))
    for tag in mux.streams:
        for match in mux.finish(tag):
            events[tag].append((match.rule, match.end))
    return events


def served_events(client: MatchClient) -> dict:
    return {
        tag: [(match.rule, match.end) for match in matches]
        for tag, matches in client.matches.items()
    }


async def feed_pairs(client: MatchClient, pairs) -> dict:
    """Drive one client through interleaved (tag, chunk) pairs; returns
    the per-stream CLOSED summaries."""
    seen: list[str] = []
    for tag, chunk in pairs:
        if tag not in client.matches:
            seen.append(tag)
            await client.open(tag)
        await client.feed(tag, chunk)
    return {tag: await client.close_stream(tag) for tag in seen}


class TestServedEqualsOffline:
    def test_interleaved_tags_one_connection(self):
        matcher = RulesetMatcher(RULES)
        pairs = [
            ("a", b"za"), ("b", b"12"), ("a", b"bc"), ("b", b"34..xyz"),
            ("c", b"..aaab"), ("a", b"abc"),
        ]

        async def main():
            async with MatchServer(matcher, port=0) as server:
                client = await MatchClient.connect(port=server.port)
                summaries = await feed_pairs(client, pairs)
                await client.quit()
                return served_events(client), summaries

        served, summaries = run(main())
        assert served == offline_events(matcher, pairs)
        assert summaries["a"].bytes_scanned == 7
        assert summaries["a"].matches_emitted == len(served["a"])

    @pytest.mark.parametrize(
        "engine",
        [info.name for info in available_backends() if info.available],
    )
    def test_every_backend_serves_identically(self, engine):
        matcher = RulesetMatcher(RULES)
        pairs = [("s", chunk) for chunk in CHUNKS]

        async def main():
            async with MatchServer(matcher, port=0, engine=engine) as server:
                client = await MatchClient.connect(port=server.port)
                await feed_pairs(client, pairs)
                await client.quit()
                return served_events(client)

        assert run(main()) == offline_events(matcher, pairs, engine=engine)

    def test_sharded_matcher_served(self):
        matcher = ShardedMatcher(RULES, shards=3)
        pairs = [("s1", b"zabc123"), ("s2", b"..aaab45xyz"), ("s1", b"xyz")]

        async def main():
            async with MatchServer(matcher, port=0) as server:
                client = await MatchClient.connect(port=server.port)
                await feed_pairs(client, pairs)
                await client.quit()
                return served_events(client)

        assert run(main()) == offline_events(matcher, pairs)

    def test_dollar_anchor_gated_to_close(self):
        matcher = RulesetMatcher(RULES)

        async def main():
            async with MatchServer(matcher, port=0) as server:
                client = await MatchClient.connect(port=server.port)
                await client.open("s")
                await client.feed("s", b"..xyz")
                await client.ping()  # all prior frames processed (FIFO)
                mid_stream = [m.rule for m in client.matches["s"]]
                await client.close_stream("s")
                await client.quit()
                return mid_stream, served_events(client)

        mid_stream, served = run(main())
        assert "tail" not in mid_stream  # withheld until end-of-data
        assert ("tail", 5) in served["s"]


class TestConcurrentConnections:
    def test_64_concurrent_connections_equal_offline(self):
        """The acceptance bar: 64 concurrent client connections, each
        with its own tagged streams, every match stream identical to
        the offline scanner's."""
        matcher = RulesetMatcher(RULES)
        n = 64
        per_client = {
            i: [(f"c{i}-s{j}", chunk) for j in range(i % 3 + 1)
                for chunk in traffic_for(i + j)]
            for i in range(n)
        }

        async def one_client(port, pairs):
            client = await MatchClient.connect(port=port)
            await feed_pairs(client, pairs)
            await client.quit()
            return served_events(client)

        async def main():
            async with MatchServer(matcher, port=0) as server:
                results = await asyncio.gather(
                    *(one_client(server.port, pairs)
                      for pairs in per_client.values())
                )
                # a client's BYE can land just before its handler's
                # final bookkeeping; wait for the counters to settle
                for _ in range(200):
                    if server.stats().connections_open == 0:
                        break
                    await asyncio.sleep(0.01)
                stats = server.stats()
            return results, stats

        results, stats = run(main())
        assert stats.connections_total == n
        assert stats.connections_open == 0
        assert stats.streams_open == 0
        for i, served in zip(per_client, results):
            assert served == offline_events(matcher, per_client[i]), i

    def test_mid_stream_disconnect_leaves_others_intact(self):
        """The casualty dies by injected RST at an exact wire offset
        (the chaos layer), not by aborting its own transport: the
        server sees a peer reset exactly as if the client crashed."""
        from tests.serve.chaoss import Fault, FaultProxy

        matcher = RulesetMatcher(RULES)
        survivor_pairs = [("ok", chunk) for chunk in CHUNKS]
        # the reset lands exactly at the end of the casualty's SECOND
        # feed: the first OPEN/FEED/PING round-trip completes cleanly
        # (forwarded bytes stay below the offset), then the next FEED
        # frame trips the fault the moment its last byte passes
        sent = len(b"OPEN dying\n") + len(b"FEED dying 2\n") + 2 + len(b"PING\n")
        sent += len(b"FEED dying 1\n") + 1

        async def main():
            async with MatchServer(matcher, port=0) as server:
                with FaultProxy(
                    ("127.0.0.1", server.port), faults=[Fault("rst", sent)]
                ) as proxy:
                    # the casualty: opens a stream, feeds half a match, dies
                    casualty = await MatchClient.connect(port=proxy.port)
                    await casualty.open("dying")
                    await casualty.feed("dying", b"ab")
                    await casualty.ping()
                    with pytest.raises((ConnectionError, OSError)):
                        await casualty.feed("dying", b"c")  # trips the RST
                        await casualty.ping()
                    await casualty.aclose()

                # the survivor keeps streaming, before and after the RST
                survivor = await MatchClient.connect(port=server.port)
                await feed_pairs(survivor, survivor_pairs)
                await survivor.quit()

                # server noticed the death and reclaimed the stream
                for _ in range(100):
                    if server.stats().streams_open == 0:
                        break
                    await asyncio.sleep(0.02)
                stats = server.stats()
                return served_events(survivor), stats

        served, stats = run(main())
        assert served == offline_events(matcher, survivor_pairs)
        assert stats.streams_open == 0
        assert stats.connections_open == 0
        assert stats.streams_total == 2

    def test_backpressure_bounded_queue_still_lossless(self):
        """queue_depth=1 forces constant reader stalls; every frame
        must still be scanned (backpressure, not loss)."""
        matcher = RulesetMatcher(RULES)
        pairs = [("s", CHUNKS[i % len(CHUNKS)]) for i in range(200)]

        async def main():
            async with MatchServer(matcher, port=0, queue_depth=1) as server:
                client = await MatchClient.connect(port=server.port)
                summaries = await feed_pairs(client, pairs)
                await client.quit()
                return served_events(client), summaries

        served, summaries = run(main())
        assert served == offline_events(matcher, pairs)
        assert summaries["s"].bytes_scanned == sum(len(c) for _, c in pairs)


class TestShutdownAndErrors:
    def test_graceful_stop_drains_queued_work(self):
        """stop(drain=True) finishes queued feeds, flushes their
        matches, and says BYE before closing the transport."""
        matcher = RulesetMatcher(RULES)
        chunks = [CHUNKS[i % len(CHUNKS)] for i in range(40)]

        async def main():
            server = await MatchServer(matcher, port=0).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"OPEN s\n")
            for chunk in chunks:
                writer.write(b"FEED s %d\n" % len(chunk) + chunk)
            await writer.drain()
            ack = await reader.readline()  # OPEN processed; feeds queued
            while server.stats().feeds < 10:  # let a batch reach the queue
                await asyncio.sleep(0.005)
            await server.stop(drain=True)
            wire = await reader.read()
            writer.close()
            return ack + wire

        wire = run(main())
        lines = wire.decode("latin-1").splitlines()
        assert lines[0] == "OK OPEN s 0"
        assert lines[-1] == "BYE"
        # drained matches are a prefix of the offline emission sequence
        # (frames still in socket buffers at stop() time are dropped,
        # but nothing is truncated or reordered)
        pairs = [("s", chunk) for chunk in chunks]
        expected = offline_events(matcher, pairs)["s"]
        got = [
            (line.split(" ", 4)[4], int(line.split(" ", 4)[2]))
            for line in lines[1:-1]
            if line.startswith("MATCH ")
        ]
        end_gated = [e for e in expected if e[0] == "tail"]
        streamed = [e for e in expected if e not in end_gated]
        assert got == streamed[: len(got)]

    def test_quit_after_ping_drains_everything(self):
        """A client that PINGs before QUIT has every feed processed, so
        drain equality is exact."""
        matcher = RulesetMatcher(RULES)
        pairs = [("s", chunk) for chunk in CHUNKS * 4]

        async def main():
            async with MatchServer(matcher, port=0) as server:
                client = await MatchClient.connect(port=server.port)
                summaries = await feed_pairs(client, pairs)
                await client.quit()
                return served_events(client), summaries

        served, summaries = run(main())
        assert served == offline_events(matcher, pairs)

    def test_application_errors_keep_the_connection(self):
        matcher = RulesetMatcher(RULES)

        async def main():
            async with MatchServer(matcher, port=0) as server:
                client = await MatchClient.connect(port=server.port)
                await client.open("s")
                # double OPEN is rejected but not fatal
                with pytest.raises(ServerError):
                    await client.open("s")
                # pipelined FEEDs to an unknown stream: one ERR per
                # frame into .errors, regardless of server-side batching
                for _ in range(3):
                    await client.feed("ghost", b"abc")
                await client.ping()  # connection still alive
                await client.feed("s", b"abc")
                await client.close_stream("s")
                stats = await client.stats()
                await client.quit()
                return client.errors, served_events(client), stats

        errors, served, stats = run(main())
        assert sum("ghost" in message for message in errors) == 3
        assert served["s"] == [("hit", 3)]
        assert stats["errors"] == 4

    def test_protocol_error_closes_the_connection(self):
        matcher = RulesetMatcher(RULES)

        async def main():
            async with MatchServer(matcher, port=0) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"BOGUS frame\n")
                await writer.drain()
                wire = await reader.read()  # server answers ERR, hangs up
                writer.close()
                return wire

        wire = run(main())
        assert wire.startswith(b"ERR ")

    def test_tag_reuse_after_close_is_a_fresh_stream(self):
        matcher = RulesetMatcher(RULES)

        async def main():
            async with MatchServer(matcher, port=0) as server:
                client = await MatchClient.connect(port=server.port)
                await client.open("s")
                await client.feed("s", b"zabc")  # one whole match...
                first = await client.close_stream("s")
                await client.open("s")
                await client.feed("s", b"ab")  # ...then half a match
                await client.close_stream("s")
                await client.open("s")
                await client.feed("s", b"c")  # must NOT complete it
                third = await client.close_stream("s")
                await client.quit()
                return served_events(client), first, third

        served, first, third = run(main())
        assert served["s"] == [("hit", 4)]  # no cross-incarnation match
        assert (first.bytes_scanned, first.matches_emitted) == (4, 1)
        # the third incarnation's summary starts from zero on both axes
        assert (third.bytes_scanned, third.matches_emitted) == (1, 0)

    def test_stats_snapshot_counters(self):
        matcher = RulesetMatcher(RULES)

        async def main():
            async with MatchServer(matcher, port=0) as server:
                client = await MatchClient.connect(port=server.port)
                await client.open("s")
                await client.feed("s", b"zabc")
                await client.close_stream("s")
                stats = await client.stats()
                await client.quit()
                return stats

        stats = run(main())
        assert stats["bytes_scanned"] == 4
        assert stats["feeds"] == 1
        assert stats["matches_emitted"] == 1
        assert stats["streams_total"] == 1
        assert stats["streams_open"] == 0
        assert stats["uptime_seconds"] > 0
        assert stats["busy_seconds"] > 0
        assert stats["throughput_bps"] == pytest.approx(
            4 / stats["busy_seconds"]
        )

    def test_feed_splits_oversized_chunks(self, monkeypatch):
        """Client-side chunk splitting: a payload larger than the frame
        cap travels as several FEED frames, same scan result."""
        import repro.serve.client as client_mod

        monkeypatch.setattr(client_mod, "MAX_FEED", 4)
        matcher = RulesetMatcher(RULES)
        payload = b"..abc..123..abc"

        async def main():
            async with MatchServer(matcher, port=0) as server:
                client = await MatchClient.connect(port=server.port)
                await client.open("s")
                await client.feed("s", payload)
                await client.close_stream("s")
                stats = await client.stats()
                await client.quit()
                return served_events(client), stats

        served, stats = run(main())
        assert stats["feeds"] == 4  # 15 bytes / 4-byte frames
        assert served == offline_events(matcher, [("s", payload)])


class TestFeedPool:
    def test_submit_returns_future_results(self):
        with FeedPool(workers=2) as pool:
            assert not pool.degraded
            assert pool.submit(sum, [1, 2, 3]).result() == 6

    def test_exceptions_travel_through_the_future(self):
        with FeedPool(workers=1) as pool:
            future = pool.submit(int, "nope")
            with pytest.raises(ValueError):
                future.result()

    def test_degraded_pool_runs_inline(self, monkeypatch):
        import concurrent.futures as futures_mod

        class Boom:
            def __init__(self, *a, **k):
                raise RuntimeError("no threads here")

        monkeypatch.setattr(futures_mod, "ThreadPoolExecutor", Boom)
        pool = FeedPool()
        assert pool.degraded
        assert pool.submit(sum, [4, 5]).result() == 9
        failing = pool.submit(int, "nope")
        with pytest.raises(ValueError):
            failing.result()
        pool.shutdown()  # no-op, must not raise

    def test_submit_after_shutdown_degrades_to_inline(self):
        pool = FeedPool(workers=1)
        pool.shutdown()
        assert pool.submit(sum, [1, 2]).result() == 3
