"""Fleet suite: multi-process serving, hot reload, supervision.

Covers ISSUE 7: `WorkerFleet` (SO_REUSEPORT sharding + listener
fallback), warm starts from the shared ruleset cache, the 64-connection
reload-under-load e2e (generation pinning: in-flight streams drain on
old tables, post-swap streams scan with the new ruleset), crash
respawn within the restart budget, merged fleet stats, the control
socket, connect backoff, and the `MatcherHandle` swap primitive.

Fleet tests fork real worker processes and talk to them over real
sockets; they are skipped only where multiprocessing itself is
unavailable.
"""

import asyncio
import os
import signal
import socket
import time

import pytest

from repro.engine.backends import available_backends
from repro.engine.parallel import mp_context
from repro.matching import RulesetMatcher
from repro.serve import (
    ControlClient,
    ControlServer,
    MatchClient,
    MatcherHandle,
    MatchServer,
    WorkerFleet,
    backoff_delays,
    merge_server_stats,
    scan_tagged_remote,
)
from repro.serve.stats import ServerStats
from repro.session import MultiStreamScanner

pytestmark = pytest.mark.skipif(
    mp_context() is None, reason="multiprocessing unavailable"
)

ENGINES = [info.name for info in available_backends() if info.available]

OLD_RULES = [("keep", r"abc"), ("gone", r"old[0-9]"), ("num", r"[0-9]{3}")]
NEW_RULES = [("keep", r"abc"), ("fresh", r"new!"), ("num", r"[0-9]{3}")]

#: fed before the reload: fires "keep", "gone", "num" on the old tables
PRE_CHUNK = b"..abc old7 123.."
#: fed to the *pinned* stream after the swap: must still scan with the
#: OLD tables ("gone" fires, "fresh" does not)
PIN_CHUNK = b"old8 new! abc"
#: fed to a stream opened after the swap: NEW tables ("fresh" fires,
#: "gone" does not)
POST_CHUNK = b"new! abc old9 456"


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


def offline_events(rules, chunks, engine=None):
    """``[(rule, end), ...]`` an offline scan of one stream emits."""
    mux = MultiStreamScanner(RulesetMatcher(rules), engine=engine)
    events = []
    for chunk in chunks:
        events.extend((m.rule, m.end) for m in mux.feed("s", chunk))
    events.extend((m.rule, m.end) for m in mux.finish("s"))
    return events


class TestBackoff:
    def test_exponential_growth_under_cap(self):
        delays = list(
            backoff_delays(5, base=0.1, cap=1.0, jitter=lambda lo, hi: hi)
        )
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.0])

    def test_full_jitter_spans_zero_to_ceiling(self):
        floors = list(backoff_delays(4, jitter=lambda lo, hi: lo))
        assert floors == [0.0] * 4

    def test_default_jitter_within_bounds(self):
        for attempt, delay in enumerate(backoff_delays(6, base=0.05, cap=0.4)):
            assert 0.0 <= delay <= min(0.4, 0.05 * 2 ** attempt)

    def test_zero_attempts_yields_nothing(self):
        assert list(backoff_delays(0)) == []

    def test_client_connect_retries_ride_out_late_bind(self):
        """A client started before the server wins via backoff retries."""
        matcher = RulesetMatcher(OLD_RULES)

        async def main():
            # reserve a port, release it, then bind it late
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            probe.close()

            async def late_server():
                await asyncio.sleep(0.3)
                server = MatchServer(matcher, port=port)
                await server.start()
                return server

            server_task = asyncio.ensure_future(late_server())
            client = await MatchClient.connect(
                port=port, retries=10, backoff_base=0.05, backoff_cap=0.2
            )
            await client.ping()
            await client.quit()
            await (await server_task).stop()

        run(main())

    def test_connect_without_retries_still_fails_fast(self):
        async def main():
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
            probe.close()
            with pytest.raises((ConnectionError, OSError)):
                await MatchClient.connect(port=port, retries=0)

        run(main())


class TestMatcherHandle:
    def test_auto_increment_and_explicit_generation(self):
        handle = MatcherHandle("m0")
        assert handle.current() == (0, "m0")
        assert handle.swap("m1") == 1
        assert handle.swap("m2", generation=7) == 7
        assert handle.current() == (7, "m2")
        assert handle.generation == 7
        assert handle.matcher == "m2"

    def test_current_returns_one_consistent_pair(self):
        handle = MatcherHandle("m0")
        generation, matcher = handle.current()
        handle.swap("m1")
        # the caller's pinned pair is untouched by the swap
        assert (generation, matcher) == (0, "m0")


class TestServerReload:
    def test_streams_pin_their_open_time_generation(self):
        """In-flight streams drain on old tables; new streams (and
        their wire lines) carry the new generation."""

        async def main():
            server = MatchServer(RulesetMatcher(OLD_RULES), port=0)
            async with server:
                client = await MatchClient.connect(port=server.port)
                await client.open("pinned")
                await client.feed("pinned", PRE_CHUNK)
                generation = await server.reload(
                    lambda: RulesetMatcher(NEW_RULES)
                )
                assert generation == 1
                # the pinned stream keeps scanning with the OLD ruleset
                await client.feed("pinned", PIN_CHUNK)
                pinned = await client.close_stream("pinned")
                # a fresh stream scans with the NEW ruleset
                await client.open("post")
                await client.feed("post", POST_CHUNK)
                post = await client.close_stream("post")
                stats = await client.stats()
                await client.quit()
                return client.matches, pinned, post, stats

        matches, pinned, post, stats = run(main())
        assert pinned.generation == 0
        assert post.generation == 1
        assert stats["generation"] == 1
        pinned_events = [(m.rule, m.end) for m in matches["pinned"]]
        assert pinned_events == offline_events(
            OLD_RULES, [PRE_CHUNK, PIN_CHUNK]
        )
        assert all(m.generation == 0 for m in matches["pinned"])
        post_events = [(m.rule, m.end) for m in matches["post"]]
        assert post_events == offline_events(NEW_RULES, [POST_CHUNK])
        assert all(m.generation == 1 for m in matches["post"])
        assert {m.rule for m in matches["post"]} >= {"fresh"}
        assert "gone" not in {m.rule for m in matches["post"]}

    def test_reload_before_start_swaps_inline(self):
        server = MatchServer(RulesetMatcher(OLD_RULES), port=0)

        async def main():
            return await server.reload(lambda: RulesetMatcher(NEW_RULES))

        assert run(main()) == 1
        assert server.handle.generation == 1


class TestFleetServing:
    @pytest.mark.parametrize("reuse_port", [True, False])
    def test_fleet_serves_equal_to_offline(self, reuse_port):
        """Both sharding modes (SO_REUSEPORT and the passed-listener
        fallback) serve byte-identical results to an offline scan."""
        chunks = [PRE_CHUNK, PIN_CHUNK, POST_CHUNK]
        with WorkerFleet(
            OLD_RULES, workers=2, port=0, reuse_port=reuse_port
        ) as fleet:
            matches, summaries, stats = scan_tagged_remote(
                fleet.host, fleet.port, [("s", c) for c in chunks], retries=3
            )
        assert [(m.rule, m.end) for m in matches["s"]] == offline_events(
            OLD_RULES, chunks
        )
        assert summaries["s"].generation == 0
        assert stats["workers"] == 1  # a connection sees its own worker
        assert stats["worker"] in (0, 1)

    def test_workers_warm_start_from_shared_cache(self, tmp_path):
        with WorkerFleet(
            OLD_RULES, workers=2, port=0, cache_dir=str(tmp_path)
        ) as fleet:
            # the parent's validation compile filled the cache, so
            # every worker loaded the artifact instead of recompiling
            assert fleet.cache_hits == [True, True]
            assert fleet.alive == 2

    def test_merged_stats_sum_across_workers(self):
        pairs = [("a", b"abc old1 123"), ("b", b"456 abc")]
        with WorkerFleet(OLD_RULES, workers=2, port=0) as fleet:
            for tag, chunk in pairs:
                scan_tagged_remote(fleet.host, fleet.port, [(tag, chunk)])
            merged = fleet.stats()
            per_worker = fleet.worker_stats()
        assert merged.workers == 2
        assert merged.worker is None
        assert {snap.worker for snap in per_worker} == {0, 1}
        assert merged.connections_total == 2
        assert merged.streams_total == 2
        assert merged.bytes_scanned == sum(len(c) for _, c in pairs)
        assert merged.bytes_scanned == sum(
            snap.bytes_scanned for snap in per_worker
        )

    def test_merge_server_stats_helper(self):
        a = ServerStats(engine="auto", bytes_scanned=10, busy_seconds=1.0,
                        generation=2, worker=0)
        b = ServerStats(engine="auto", bytes_scanned=30, busy_seconds=1.0,
                        generation=1, worker=1)
        merged = merge_server_stats([a, b])
        assert merged.bytes_scanned == 40
        assert merged.generation == 1  # min: the floor every worker reached
        assert merged.workers == 2
        assert merged.throughput_bps == pytest.approx(20.0)

    def test_merge_server_stats_empty_and_one_element(self):
        # the cluster path folds whatever shard subset responded: zero
        # snapshots merge to a neutral snapshot, one merges to itself
        empty = merge_server_stats([])
        assert empty.workers == 0
        assert empty.engine == "none"
        assert empty.bytes_scanned == 0 and empty.uptime_seconds == 0.0
        assert empty.throughput_bps is None
        one = ServerStats(engine="auto", bytes_scanned=10, busy_seconds=2.0,
                          generation=3, worker=1)
        merged = merge_server_stats([one])
        assert merged.bytes_scanned == 10
        assert merged.generation == 3
        assert merged.worker is None  # merged views never name one worker
        assert merged.workers == 1

    def test_crashed_worker_respawns_within_budget(self):
        with WorkerFleet(
            OLD_RULES, workers=2, port=0, restart_budget=2
        ) as fleet:
            victim = fleet._workers[0].pid
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if fleet.restarts >= 1 and fleet.alive == 2:
                    break
                time.sleep(0.1)
            assert fleet.restarts >= 1
            assert fleet.alive == 2
            assert victim not in [w.pid for w in fleet._workers]
            # the respawned fleet still serves correctly
            matches, _, _ = scan_tagged_remote(
                fleet.host, fleet.port, [("s", PRE_CHUNK)], retries=5
            )
            assert [(m.rule, m.end) for m in matches["s"]] == offline_events(
                OLD_RULES, [PRE_CHUNK]
            )


class TestFleetReloadUnderLoad:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_64_connections_reload_mid_stream(self, engine):
        """The ISSUE 7 acceptance e2e, per registered backend: 64
        connections through a 2-worker fleet, SIGHUP-equivalent reload
        mid-stream to a ruleset with one added + one removed rule.
        Asserts (a) no connection drops, (b) every match carries the
        generation it was scanned under, (c) pinned streams drain on
        the old ruleset and post-swap streams equal offline scanning
        with the new one."""
        n = 64

        async def drive(fleet):
            clients = [
                await MatchClient.connect(port=fleet.port, retries=5)
                for _ in range(n)
            ]
            for client in clients:
                await client.open("pre")
                await client.feed("pre", PRE_CHUNK)
            generation = await asyncio.to_thread(fleet.reload, NEW_RULES)
            # mid-stream: the open "pre" streams stay pinned to gen 0
            for client in clients:
                await client.feed("pre", PIN_CHUNK)
            pre = [await client.close_stream("pre") for client in clients]
            # post-swap streams (same 64 connections) use the new tables
            for client in clients:
                await client.open("post")
                await client.feed("post", POST_CHUNK)
            post = [await client.close_stream("post") for client in clients]
            events = [client.matches for client in clients]
            errors = [client.errors for client in clients]
            for client in clients:
                await client.quit()
            return generation, pre, post, events, errors

        with WorkerFleet(
            OLD_RULES, workers=2, port=0, engine=engine
        ) as fleet:
            generation, pre, post, events, errors = run(drive(fleet))
            merged = fleet.stats()

        assert generation == 1
        # (a) no connection drops: all 64 made it through both phases
        assert len(pre) == len(post) == n
        assert all(not errs for errs in errors)
        assert merged.connections_total == n
        assert merged.streams_total == 2 * n
        assert merged.generation == 1
        # (b) + (c): per-stream generation stamps and offline equality
        expected_pre = offline_events(
            OLD_RULES, [PRE_CHUNK, PIN_CHUNK], engine=engine
        )
        expected_post = offline_events(NEW_RULES, [POST_CHUNK], engine=engine)
        for summary in pre:
            assert summary.generation == 0
        for summary in post:
            assert summary.generation == 1
        for matches in events:
            assert [(m.rule, m.end) for m in matches["pre"]] == expected_pre
            assert all(m.generation == 0 for m in matches["pre"])
            assert [(m.rule, m.end) for m in matches["post"]] == expected_post
            assert all(m.generation == 1 for m in matches["post"])
            rules_seen = {m.rule for m in matches["post"]}
            assert "fresh" in rules_seen and "gone" not in rules_seen

    def test_noop_reload_bumps_generation_only(self):
        with WorkerFleet(OLD_RULES, workers=2, port=0) as fleet:
            assert fleet.reload() == 1
            assert fleet.reload() == 2
            _, summaries, stats = scan_tagged_remote(
                fleet.host, fleet.port, [("s", PRE_CHUNK)]
            )
        assert summaries["s"].generation == 2
        assert stats["generation"] == 2

    def test_bad_ruleset_fails_in_parent_without_touching_workers(self):
        from repro.serve import FleetError

        with WorkerFleet(OLD_RULES, workers=2, port=0) as fleet:
            # every rule broken: the parent's validation compile
            # rejects the reload before any worker hears about it
            with pytest.raises(FleetError, match="no rule compiled"):
                fleet.reload(rules=[("broken", "a(bc")])
            assert fleet.generation == 0
            # the fleet still serves the original ruleset
            matches, _, _ = scan_tagged_remote(
                fleet.host, fleet.port, [("s", PRE_CHUNK)]
            )
            assert [(m.rule, m.end) for m in matches["s"]] == offline_events(
                OLD_RULES, [PRE_CHUNK]
            )


class TestControlSocket:
    def test_fleet_control_roundtrip(self, tmp_path):
        path = str(tmp_path / "repro-control.sock")
        stopped = []
        with WorkerFleet(OLD_RULES, workers=2, port=0) as fleet:
            with ControlServer(fleet, path, on_stop=lambda: stopped.append(1)):
                with ControlClient(path) as ctl:
                    assert ctl.ping()
                    assert ctl.generation() == 0
                    assert ctl.reload() == 1
                    assert ctl.generation() == 1
                    snapshot = ctl.stats()
                    assert snapshot["workers"] == 2
                    assert snapshot["generation"] == 1
                    assert ctl.command("NONSENSE").startswith("ERR ")
                    ctl.stop()
        assert stopped == [1]
        assert not os.path.exists(path)

    def test_stale_socket_file_is_replaced(self, tmp_path):
        path = str(tmp_path / "stale.sock")
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(path)  # bound but crashed: never listening
        stale.close()

        class Target:
            generation = 0

        with ControlServer(Target(), path):
            with ControlClient(path) as ctl:
                assert ctl.generation() == 0
