"""Wire-protocol codec: grammar round-trips and framing rejections."""

import pytest

from repro.serve.protocol import (
    Command,
    MAX_FEED,
    ProtocolError,
    escape_token,
    format_command,
    format_match,
    parse_command,
    parse_match,
    unescape_token,
    validate_stream_tag,
)
from repro.session import Match


class TestCommandGrammar:
    @pytest.mark.parametrize(
        "line,expected",
        [
            (b"OPEN s1", Command("OPEN", "s1")),
            (b"CLOSE conn-9", Command("CLOSE", "conn-9")),
            (b"FEED s1 0", Command("FEED", "s1", 0)),
            (b"FEED s1 65536", Command("FEED", "s1", 65536)),
            (b"STATS", Command("STATS")),
            (b"PING", Command("PING")),
            (b"QUIT", Command("QUIT")),
        ],
    )
    def test_parse(self, line, expected):
        assert parse_command(line) == expected

    @pytest.mark.parametrize(
        "line",
        [
            b"",  # empty verb
            b"NOPE",  # unknown verb
            b"OPEN",  # missing tag
            b"OPEN a b",  # too many fields
            b"OPEN a\tb",  # whitespace inside a tag
            b"FEED s1",  # missing length
            b"FEED s1 xyz",  # non-integer length
            b"FEED s1 -1",  # negative length
            b"PING now",  # argument on a bare verb
            b"open s1",  # verbs are case-sensitive
        ],
    )
    def test_rejects(self, line):
        with pytest.raises(ProtocolError):
            parse_command(line)

    def test_feed_length_cap(self):
        assert parse_command(f"FEED s {MAX_FEED}".encode()).nbytes == MAX_FEED
        with pytest.raises(ProtocolError):
            parse_command(f"FEED s {MAX_FEED + 1}".encode())

    @pytest.mark.parametrize(
        "command",
        [
            Command("OPEN", "s1"),
            Command("FEED", "s1", 42),
            Command("CLOSE", "s1"),
            Command("STATS"),
            Command("PING"),
            Command("QUIT"),
        ],
    )
    def test_format_parse_round_trip(self, command):
        line = format_command(command)
        assert line.endswith(b"\n")
        assert parse_command(line[:-1]) == command


class TestStreamTags:
    @pytest.mark.parametrize("tag", ["a", "client-7", "x" * 128, "A.B_C/9"])
    def test_legal(self, tag):
        assert validate_stream_tag(tag) == tag

    @pytest.mark.parametrize(
        "tag", ["", " ", "a b", "a\tb", "a\nb", "x" * 129, "\x00", "a\x1fb"]
    )
    def test_illegal(self, tag):
        with pytest.raises(ProtocolError):
            validate_stream_tag(tag)


class TestMatchLines:
    def test_round_trip(self):
        match = Match(rule="sig-1", end=1234, stream="s1", code="sig-1")
        parsed = parse_match(format_match(match))
        # the raw hardware code does not travel on the wire
        assert (parsed.rule, parsed.end, parsed.stream) == ("sig-1", 1234, "s1")
        assert parsed.code is None
        # a match with no generation stamps (and parses back) gen 0
        assert parsed.generation == 0
        assert format_match(match) == b"MATCH s1 1234 0 sig-1\n"

    def test_generation_stamp_round_trips(self):
        match = Match(rule="sig-1", end=9, stream="s1", generation=4)
        line = format_match(match)
        assert line == b"MATCH s1 9 4 sig-1\n"
        assert parse_match(line).generation == 4
        # an explicit generation argument overrides the match's own
        assert format_match(match, generation=7) == b"MATCH s1 9 7 sig-1\n"
        assert parse_match(b"MATCH s1 9 7 sig-1\n").generation == 7

    @pytest.mark.parametrize(
        "rule",
        ["plain", "with spaces", "tab\tinside", "line\nbreak", "back\\slash", ""],
    )
    def test_rule_escaping_round_trips(self, rule):
        assert unescape_token(escape_token(rule)) == rule
        match = Match(rule=rule, end=7, stream="s")
        line = format_match(match)
        assert line.count(b"\n") == 1 and line.endswith(b"\n")
        assert parse_match(line).rule == rule

    @pytest.mark.parametrize(
        "line",
        [
            b"MATCH s1\n",
            b"MATCH s1 x rule\n",  # non-integer end offset
            b"MATCH s1 17 rule\n",  # v1 line: generation field missing
            b"MATCH s1 17 g rule\n",  # non-integer generation
            b"PONG\n",
        ],
    )
    def test_rejects_malformed(self, line):
        with pytest.raises(ProtocolError):
            parse_match(line)
