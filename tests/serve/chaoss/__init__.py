"""Deterministic TCP fault injection for the serving test suite.

:class:`FaultProxy` is a thread-based TCP interposer: it listens on an
ephemeral port, forwards every accepted connection to one upstream
``(host, port)``, and injects :class:`Fault` events at exact byte
offsets of the forwarded stream -- so "the connection died 40 bytes
into the third FEED frame" is a reproducible test case instead of a
racy ``transport.abort()`` sprinkled into client code.

Fault kinds (``offset`` counts cumulative payload bytes in the fault's
``direction``, ``"c2s"`` = client-to-server or ``"s2c"``):

* ``"rst"``      -- hard reset: both sockets of the connection are
  closed with ``SO_LINGER(1, 0)``, so each peer sees ECONNRESET, not
  a clean FIN (the mid-stream crash case);
* ``"truncate"`` -- forward exactly ``offset`` bytes, then send a
  clean FIN to the destination and blackhole the rest (the
  half-closed / short-write case);
* ``"drop"``     -- silently stop forwarding past ``offset`` while
  keeping the connection open (the stalled-peer case; pair with a
  timeout on the waiting side);
* ``"delay"``    -- sleep ``delay`` seconds once ``offset`` bytes
  have passed, then keep forwarding (reorders timing, loses nothing).

Being plain sockets and threads, the proxy works identically beneath
sync tests and asyncio tests (it never touches the event loop).  Use
:func:`seeded_schedule` for deterministic randomized fault schedules:
the same seed always yields the same fault list.
"""

from __future__ import annotations

import contextlib
import random
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Fault", "FaultProxy", "seeded_schedule"]

FAULT_KINDS = ("rst", "truncate", "drop", "delay")

_RECV = 65536
#: SO_LINGER {on, timeout 0}: close() sends RST instead of FIN
_LINGER_RST = struct.pack("ii", 1, 0)


@dataclass(frozen=True)
class Fault:
    """One injected fault at an exact byte offset of one connection.

    ``offset`` is the cumulative number of payload bytes forwarded in
    ``direction`` before the fault fires: a fault at offset N fires
    after byte N has been forwarded and before byte N+1 is.
    ``connection`` selects the nth accepted connection (0-based).
    """

    kind: str
    offset: int
    direction: str = "c2s"
    delay: float = 0.05
    connection: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.direction not in ("c2s", "s2c"):
            raise ValueError(f"direction must be c2s|s2c, got {self.direction!r}")
        if self.offset < 0:
            raise ValueError("offset must be >= 0")


def seeded_schedule(
    seed: int,
    *,
    count: int = 3,
    kinds: tuple[str, ...] = ("delay",),
    max_offset: int = 2048,
    direction: str = "c2s",
    max_delay: float = 0.02,
    connection: int = 0,
) -> list[Fault]:
    """A deterministic pseudo-random fault schedule.

    Same arguments -> same list, always (backed by ``random.Random``
    with an explicit seed), so a chaos test failure reproduces from
    its seed alone.
    """
    rng = random.Random(seed)
    return sorted(
        (
            Fault(
                kind=rng.choice(list(kinds)),
                offset=rng.randrange(max_offset),
                direction=direction,
                delay=rng.uniform(0.001, max_delay),
                connection=connection,
            )
            for _ in range(count)
        ),
        key=lambda fault: fault.offset,
    )


@dataclass
class _Conn:
    index: int
    client: socket.socket
    upstream: socket.socket
    threads: list = field(default_factory=list)
    #: set by an rst fault (or stop()): pumps exit on their next poll
    dead: threading.Event = field(default_factory=threading.Event)


class FaultProxy:
    """TCP interposer injecting :class:`Fault` events at byte offsets.

    ::

        with FaultProxy(("127.0.0.1", server_port),
                        faults=[Fault("rst", offset=40)]) as proxy:
            client.connect(("127.0.0.1", proxy.port))

    ``proxy.forwarded`` maps ``(connection_index, direction)`` to the
    payload byte count actually forwarded -- so a truncate test can
    assert the exact cut point.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        *,
        faults: tuple[Fault, ...] | list[Fault] = (),
        host: str = "127.0.0.1",
    ):
        self.upstream = (upstream[0], int(upstream[1]))
        self.faults = list(faults)
        self.host = host
        self.port: int = 0
        self.forwarded: dict[tuple[int, str], int] = {}
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conns: list[_Conn] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "FaultProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        # a timeout lets the accept loop poll _stopping: closing a
        # listener does NOT wake a thread blocked in accept()
        listener.settimeout(0.25)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="faultproxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            conn.dead.set()
            for sock in (conn.client, conn.upstream):
                with contextlib.suppress(OSError):
                    sock.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for conn in conns:
            for thread in conn.threads:
                thread.join(timeout=5)

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def connections(self) -> int:
        with self._lock:
            return len(self._conns)

    # -- data path ---------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        index = 0
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except TimeoutError:
                continue  # poll _stopping
            except OSError:
                return  # listener closed by stop()
            try:
                up = socket.create_connection(self.upstream, timeout=10)
            except OSError:
                with contextlib.suppress(OSError):
                    client.close()
                continue
            # a poll timeout on both sockets: a blocking recv survives a
            # close() from another thread, so pumps must wake on their
            # own to notice an rst fault or stop()
            client.settimeout(0.25)
            up.settimeout(0.25)
            conn = _Conn(index, client, up)
            for direction, src, dst in (
                ("c2s", client, up),
                ("s2c", up, client),
            ):
                thread = threading.Thread(
                    target=self._pump,
                    args=(conn, direction, src, dst),
                    name=f"faultproxy-{index}-{direction}",
                    daemon=True,
                )
                conn.threads.append(thread)
            with self._lock:
                self._conns.append(conn)
            for thread in conn.threads:
                thread.start()
            index += 1

    def _pump(
        self,
        conn: _Conn,
        direction: str,
        src: socket.socket,
        dst: socket.socket,
    ) -> None:
        """Forward src -> dst, firing this direction's faults in offset
        order; one thread per direction per connection."""
        faults = deque(
            sorted(
                (
                    fault
                    for fault in self.faults
                    if fault.connection == conn.index
                    and fault.direction == direction
                ),
                key=lambda fault: fault.offset,
            )
        )
        key = (conn.index, direction)
        self.forwarded.setdefault(key, 0)
        blackhole = False
        try:
            while True:
                # faults at the current offset fire before more bytes move
                while faults and self.forwarded[key] >= faults[0].offset:
                    if self._apply(faults.popleft(), conn, dst) == "stop":
                        blackhole = True
                try:
                    chunk = src.recv(_RECV)
                except TimeoutError:
                    if conn.dead.is_set() or self._stopping.is_set():
                        return
                    continue
                if not chunk:
                    break
                while chunk:
                    if faults and not blackhole:
                        room = faults[0].offset - self.forwarded[key]
                        head, chunk = chunk[:room], chunk[room:]
                    else:
                        head, chunk = chunk, b""
                    if head and not blackhole:
                        # count first: once sendall returns, the peer
                        # may already have echoed the bytes back and a
                        # test may be reading the counter
                        self.forwarded[key] += len(head)
                        dst.sendall(head)
                    while faults and self.forwarded[key] >= faults[0].offset:
                        if self._apply(faults.popleft(), conn, dst) == "stop":
                            blackhole = True
        except OSError:
            pass  # a fault (or stop()) closed a socket under us
        finally:
            # clean EOF propagation -- unless a fault already cut harder
            with contextlib.suppress(OSError):
                dst.shutdown(socket.SHUT_WR)

    @staticmethod
    def _apply(fault: Fault, conn: _Conn, dst: socket.socket) -> str | None:
        if fault.kind == "delay":
            time.sleep(fault.delay)
            return None
        if fault.kind == "drop":
            return "stop"
        if fault.kind == "truncate":
            with contextlib.suppress(OSError):
                dst.shutdown(socket.SHUT_WR)
            return "stop"
        # rst: both peers see a reset, exactly as if the proxied process
        # died -- SO_LINGER(1,0) turns close() into RST
        # no shutdown() first: that would send a FIN and the peer would
        # see a clean EOF instead of ECONNRESET; the other pump thread
        # notices via its recv timeout + the dead flag
        conn.dead.set()
        for sock in (conn.client, conn.upstream):
            with contextlib.suppress(OSError):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, _LINGER_RST)
            with contextlib.suppress(OSError):
                sock.close()
        return "stop"
