"""The chaos layer's own suite: each fault kind against a real socket
pair, plus schedule determinism.

These tests pin the interposer's semantics *before* the serving tests
build on it: a ``FaultProxy`` bug would otherwise surface as a
baffling protocol failure two layers up.
"""

import socket
import threading
import time

import pytest

from tests.serve.chaoss import Fault, FaultProxy, seeded_schedule


class Upstream:
    """One-connection upstream: records received bytes, optionally
    echoes them, flags EOF."""

    def __init__(self, echo: bool = False):
        self.echo = echo
        self.received = b""
        self.eof = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.port = self._listener.getsockname()[1]
        self._conn: socket.socket | None = None
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def address(self):
        return ("127.0.0.1", self.port)

    def _serve(self):
        try:
            conn, _ = self._listener.accept()
        except OSError:
            self.eof.set()
            return
        self._conn = conn
        while True:
            try:
                chunk = conn.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            self.received += chunk
            if self.echo:
                try:
                    conn.sendall(chunk)
                except OSError:
                    break
        self.eof.set()

    def close(self):
        for sock in (self._conn, self._listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._thread.join(timeout=5)


def recv_exactly(sock: socket.socket, n: int) -> bytes:
    out = b""
    while len(out) < n:
        chunk = sock.recv(n - len(out))
        if not chunk:
            break
        out += chunk
    return out


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode", 0)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="c2s"):
            Fault("rst", 0, direction="sideways")

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="offset"):
            Fault("rst", -1)


class TestSeededSchedule:
    def test_same_seed_same_schedule(self):
        assert seeded_schedule(7, count=5) == seeded_schedule(7, count=5)

    def test_different_seed_different_schedule(self):
        assert seeded_schedule(7, count=5) != seeded_schedule(8, count=5)

    def test_sorted_by_offset_and_typed(self):
        schedule = seeded_schedule(3, count=8, kinds=("delay", "rst"))
        offsets = [fault.offset for fault in schedule]
        assert offsets == sorted(offsets)
        assert all(fault.kind in ("delay", "rst") for fault in schedule)


class TestFaultProxy:
    def test_passthrough_round_trip(self):
        upstream = Upstream(echo=True)
        try:
            with FaultProxy(upstream.address) as proxy:
                with socket.create_connection(proxy.address, timeout=5) as sock:
                    sock.settimeout(5)
                    sock.sendall(b"hello")
                    assert recv_exactly(sock, 5) == b"hello"
                assert upstream.eof.wait(5)
                assert proxy.forwarded[(0, "c2s")] == 5
                assert proxy.forwarded[(0, "s2c")] == 5
        finally:
            upstream.close()

    def test_truncate_cuts_at_exact_offset(self):
        upstream = Upstream()
        try:
            faults = [Fault("truncate", 5)]
            with FaultProxy(upstream.address, faults=faults) as proxy:
                with socket.create_connection(proxy.address, timeout=5) as sock:
                    sock.sendall(b"0123456789")
                    # upstream sees a clean FIN after exactly 5 bytes
                    assert upstream.eof.wait(5)
                    assert upstream.received == b"01234"
                    assert proxy.forwarded[(0, "c2s")] == 5
        finally:
            upstream.close()

    def test_rst_resets_the_client(self):
        upstream = Upstream()
        try:
            faults = [Fault("rst", 4)]
            with FaultProxy(upstream.address, faults=faults) as proxy:
                with socket.create_connection(proxy.address, timeout=5) as sock:
                    sock.settimeout(5)
                    sock.sendall(b"0123456789")
                    # a reset, not a clean FIN: recv must raise, never
                    # return b"" (that would be EOF) and never hang
                    with pytest.raises(OSError):
                        while True:
                            if not sock.recv(1024):
                                raise AssertionError("clean FIN, expected RST")
                assert proxy.forwarded[(0, "c2s")] == 4
        finally:
            upstream.close()

    def test_drop_blackholes_but_keeps_connection(self):
        upstream = Upstream()
        try:
            faults = [Fault("drop", 4)]
            with FaultProxy(upstream.address, faults=faults) as proxy:
                with socket.create_connection(proxy.address, timeout=5) as sock:
                    sock.sendall(b"0123456789")
                    deadline = time.monotonic() + 5
                    while (
                        upstream.received != b"0123"
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.01)
                    assert upstream.received == b"0123"
                    # no FIN, no RST: the peer just goes silent
                    assert not upstream.eof.wait(0.3)
                    assert proxy.forwarded[(0, "c2s")] == 4
        finally:
            upstream.close()

    def test_delay_pauses_forwarding(self):
        upstream = Upstream(echo=True)
        try:
            faults = [Fault("delay", 3, delay=0.3)]
            with FaultProxy(upstream.address, faults=faults) as proxy:
                with socket.create_connection(proxy.address, timeout=5) as sock:
                    sock.settimeout(5)
                    start = time.monotonic()
                    sock.sendall(b"abcdef")
                    assert recv_exactly(sock, 6) == b"abcdef"
                    assert time.monotonic() - start >= 0.25
                assert proxy.forwarded[(0, "c2s")] == 6
        finally:
            upstream.close()

    def test_second_connection_faults_independently(self):
        """Faults select connections by index: connection 0 is reset,
        connection 1 passes through untouched."""
        first = Upstream()
        try:
            faults = [Fault("rst", 2, connection=0)]
            with FaultProxy(first.address, faults=faults) as proxy:
                with socket.create_connection(proxy.address, timeout=5) as doomed:
                    doomed.settimeout(5)
                    doomed.sendall(b"0123")
                    with pytest.raises(OSError):
                        while True:
                            if not doomed.recv(1024):
                                raise AssertionError("clean FIN, expected RST")
                # the upstream accepts one connection per lifetime, so
                # a fresh upstream backs the second connection
                second = Upstream(echo=True)
                try:
                    proxy.upstream = second.address
                    with socket.create_connection(
                        proxy.address, timeout=5
                    ) as sock:
                        sock.settimeout(5)
                        sock.sendall(b"fine")
                        assert recv_exactly(sock, 4) == b"fine"
                    assert proxy.forwarded[(1, "c2s")] == 4
                finally:
                    second.close()
        finally:
            first.close()
