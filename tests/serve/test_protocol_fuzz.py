"""Protocol fuzz suite (ISSUE 10 satellite): random noise against both
ends of the wire protocol.

Three properties, each timeout-guarded so a regression shows up as a
clean failure, never a hung test run:

* the client's reply demultiplexer (``MatchClient._dispatch``) maps
  arbitrary server bytes to :class:`ProtocolError` /
  :class:`ConnectionError` / :class:`ServerError` -- never another
  exception type, never a wedged dispatcher;
* however the reply stream is split into TCP reads, pipelined commands
  resolve with identical results (framing is read-boundary-blind);
* a real :class:`MatchServer` answers garbage -- unknown verbs,
  oversized/negative FEED length prefixes, binary noise -- with
  ``ERR`` and at worst drops that one connection; it keeps serving
  correct clients afterwards.

And the leak property: closing a client with commands in flight fails
every pending future (nothing awaits forever on a dead connection).
"""

import asyncio

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.matching import RulesetMatcher  # noqa: E402
from repro.serve import MatchClient, MatchServer, ProtocolError, ServerError  # noqa: E402
from repro.serve.protocol import MAX_FEED, escape_token  # noqa: E402

RULES = [("hit", r"abc"), ("num", r"[0-9]{3,5}")]

#: one compiled ruleset for every spun-up server in this module
MATCHER = RulesetMatcher(RULES)

#: exception types the client is ALLOWED to surface on bad input
ALLOWED = (ProtocolError, ConnectionError, ServerError)


def run(coro, timeout=30):
    """Every property runs under a hang guard: a fuzz case that blocks
    the loop is a failure, not a stuck CI job."""
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


class _FakeWriter:
    """Just enough StreamWriter surface for MatchClient."""

    def __init__(self):
        self.data = b""

    def write(self, payload: bytes) -> None:
        self.data += payload

    async def drain(self) -> None:
        pass

    def close(self) -> None:
        pass

    async def wait_closed(self) -> None:
        pass

    def get_extra_info(self, name, default=None):
        return default


async def make_client() -> tuple[MatchClient, asyncio.StreamReader]:
    reader = asyncio.StreamReader()
    client = MatchClient(reader, _FakeWriter())
    return client, reader


# -- strategies ------------------------------------------------------------
latin1_line = st.binary(max_size=120).map(
    lambda raw: raw.replace(b"\n", b"?")
)
matchish_line = st.builds(
    lambda tail: b"MATCH " + tail.replace(b"\n", b"?"),
    st.binary(max_size=80),
)
verbish_line = st.builds(
    lambda verb, tail: verb + b" " + tail.replace(b"\n", b"?"),
    st.sampled_from([b"OK", b"CLOSED", b"STATS", b"PONG", b"BYE", b"ERR", b"NOPE"]),
    st.binary(max_size=60),
)
noise_lines = st.lists(
    st.one_of(latin1_line, matchish_line, verbish_line), max_size=12
)


class TestDispatchFuzz:
    @given(lines=noise_lines)
    @settings(max_examples=60, deadline=None)
    def test_dispatch_raises_only_protocol_errors(self, lines):
        """Arbitrary reply lines either parse or raise an ALLOWED
        exception type; the dispatcher itself never corrupts state so
        badly that aclose() can't complete."""

        async def main():
            client, _ = await make_client()
            for raw in lines:
                try:
                    client._dispatch(raw)
                except ALLOWED:
                    pass
                # anything else (ValueError, KeyError, ...) propagates
                # and fails the test
            await client.aclose()
            assert client._pending == []

        run(main())

    @given(lines=noise_lines)
    @settings(max_examples=30, deadline=None)
    def test_demux_with_noise_fails_pending_never_hangs(self, lines):
        """A pending command on a connection that then receives noise
        (and EOF) resolves -- with a result or an ALLOWED error --
        instead of hanging its awaiter."""

        async def main():
            client, reader = await make_client()
            ping = asyncio.ensure_future(client.ping())
            await asyncio.sleep(0)  # let the PING enqueue
            for raw in lines:
                reader.feed_data(raw + b"\n")
            reader.feed_eof()
            try:
                await asyncio.wait_for(ping, timeout=5)
            except asyncio.TimeoutError:
                raise AssertionError("pending PING hung on noisy input")
            except ALLOWED:
                pass
            await client.aclose()
            assert all(p.future.done() for p in client._pending)

        run(main())


class TestSplitFrames:
    @given(
        cuts=st.lists(st.integers(min_value=0, max_value=200), max_size=6),
        rule=st.text(
            st.characters(
                codec="latin-1", blacklist_characters="\x00"
            ),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_read_split_parses_identically(self, cuts, rule):
        """The reply stream split at arbitrary byte boundaries yields
        the same command results and MATCH events."""
        wire = (
            b"OK OPEN s 0\n"
            b"MATCH s 7 0 " + escape_token(rule).encode("latin-1") + b"\n"
            b"PONG\n"
        )
        positions = sorted({min(cut, len(wire)) for cut in cuts})
        parts = [
            wire[start:stop]
            for start, stop in zip([0, *positions], [*positions, len(wire)])
            if wire[start:stop]
        ]

        async def main():
            client, reader = await make_client()
            # enqueue BOTH pendings (FIFO: OPEN then PING) before any
            # reply bytes arrive, else the demuxer sees them as
            # unsolicited
            open_task = asyncio.ensure_future(client.open("s"))
            await asyncio.sleep(0)
            ping_task = asyncio.ensure_future(client.ping())
            await asyncio.sleep(0)
            assert len(client._pending) == 2
            for part in parts:
                reader.feed_data(part)
                await asyncio.sleep(0)
            await asyncio.wait_for(
                asyncio.gather(open_task, ping_task), timeout=5
            )
            events = list(client._events["s"])
            await client.aclose()
            return events

        assert run(main()) == [(rule, 7, 0)]


class TestPendingFutureLeaks:
    def test_aclose_fails_commands_in_flight(self):
        async def main():
            client, _ = await make_client()
            ping = asyncio.ensure_future(client.ping())
            await asyncio.sleep(0)
            await client.aclose()
            with pytest.raises(ConnectionError):
                await asyncio.wait_for(ping, timeout=5)

        run(main())

    def test_eof_fails_commands_in_flight(self):
        async def main():
            client, reader = await make_client()
            ping = asyncio.ensure_future(client.ping())
            await asyncio.sleep(0)
            reader.feed_eof()
            with pytest.raises(ConnectionError):
                await asyncio.wait_for(ping, timeout=5)
            await client.aclose()

        run(main())


# -- the real server under fire -------------------------------------------
server_noise = st.one_of(
    st.binary(min_size=1, max_size=200).map(lambda b: b.replace(b"\n", b"?") + b"\n"),
    st.builds(
        lambda n: f"FEED s {n}\n".encode(),
        st.integers(min_value=MAX_FEED + 1, max_value=10**12),
    ),
    st.builds(
        lambda n: f"FEED s {n}\n".encode(),
        st.integers(min_value=-(10**9), max_value=-1),
    ),
    st.sampled_from(
        [
            b"NOPE\n",
            b"OPEN\n",
            b"OPEN a b c\n",
            b"FEED s notanumber\n",
            b"FEED s 9999999999\n",
            b"X" * 8192 + b"\n",  # way past MAX_LINE
            b"OPEN \x01\n",
        ]
    ),
)


async def feed_noise_then_probe(noise: bytes):
    """Throw one noise blob at a fresh connection; assert the server
    answers ERR or hangs up, then still serves a clean client."""
    async with MatchServer(MATCHER, port=0) as server:
        reader, writer = await asyncio.open_connection(port=server.port)
        writer.write(noise)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # server already reset us mid-write: acceptable
        # the connection must resolve: ERR line(s), then EOF (framing
        # errors drop the connection) -- or survive an app-level ERR,
        # in which case QUIT completes the read-to-EOF quickly
        writer.write(b"QUIT\n")
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        replied = await asyncio.wait_for(reader.read(), timeout=10)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

        # the server is not wedged: a clean client still gets answers
        client = await MatchClient.connect(port=server.port)
        await client.open("ok")
        await client.feed("ok", b"zabc")
        summary = await client.close_stream("ok")
        await client.quit()
        assert summary.bytes_scanned == 4
        assert [(m.rule, m.end) for m in client.matches["ok"]] == [("hit", 4)]
        return replied


class TestServerUnderFuzz:
    @given(noise=server_noise)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_noise_gets_err_and_server_survives(self, noise):
        replied = run(feed_noise_then_probe(noise), timeout=60)
        # every rejected connection saw an explicit ERR or BYE before
        # EOF unless the server reset it outright mid-write
        assert replied == b"" or b"ERR" in replied or b"BYE" in replied

    def test_oversized_feed_prefix_is_rejected_not_buffered(self):
        """`FEED s 9999999999` must be refused from the length prefix
        alone -- the server must not try to buffer 10 GB."""

        async def main():
            async with MatchServer(MATCHER, port=0) as server:
                reader, writer = await asyncio.open_connection(port=server.port)
                writer.write(b"OPEN s\nFEED s 9999999999\n")
                await writer.drain()
                replied = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return replied

        replied = run(main())
        assert b"ERR" in replied
        assert b"FEED" in replied

    def test_split_frames_across_tcp_segments_still_served(self):
        """A FEED frame dribbled one byte at a time is identical to one
        sent whole (framing is read-boundary-blind server-side too)."""

        async def main():
            async with MatchServer(MATCHER, port=0) as server:
                reader, writer = await asyncio.open_connection(port=server.port)
                wire = b"OPEN s\nFEED s 4\nzabcCLOSE s\nQUIT\n"
                for index in range(len(wire)):
                    writer.write(wire[index : index + 1])
                    await writer.drain()
                replied = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return replied

        replied = run(main())
        assert b"MATCH s 4 0 hit\n" in replied
        assert b"CLOSED s 4 1" in replied

    def test_client_rejects_malformed_match_line(self):
        """The client side of the same property: a corrupted MATCH line
        surfaces as ProtocolError, not a bare ValueError."""

        async def main():
            client, reader = await make_client()
            ping = asyncio.ensure_future(client.ping())
            await asyncio.sleep(0)
            reader.feed_data(b"MATCH s notanint 0 rule\n")
            with pytest.raises((ProtocolError, ConnectionError)):
                await asyncio.wait_for(ping, timeout=5)
            assert isinstance(client._error, ProtocolError)
            await client.aclose()

        run(main())
