"""Cluster scatter-gather differential suite (ISSUE 10 satellite).

The load-bearing property: a :class:`RemoteShardedMatcher` over a
3-shard :class:`LocalShardCluster` -- reached *through*
:class:`~tests.serve.chaoss.FaultProxy` interposers -- emits exactly
what an offline :class:`MultiStreamScanner` over the full unsharded
ruleset emits, per feed, across 64 interleaved streams, on every
registered backend.

The failure half: a shard that dies mid-flight (deterministic
byte-offset RST via FaultProxy, or an outright ``kill_shard``) must
surface as :class:`ClusterPartialResultError` naming the shard, the
affected streams, and the matches already delivered -- never a hang,
never silently dropped matches.
"""

import pytest

from repro import (
    ClusterPartialResultError,
    ClusterSpec,
    LocalShardCluster,
    MultiStreamScanner,
    RemoteShardedMatcher,
    RulesetMatcher,
    ShardedMatcher,
    available_backends,
)
from repro.compiler.pipeline import dedupe_rules
from repro.engine.parallel import shard_rules
from repro.serve.cluster import parse_endpoint
from tests.serve.chaoss import Fault, FaultProxy
from tests.serve.test_server import RULES, offline_events, traffic_for

ENGINES = [info.name for info in available_backends() if info.available]

STREAM_COUNT = 64


def interleaved_pairs(streams: int = STREAM_COUNT) -> list[tuple[str, bytes]]:
    """64 tagged streams, chunks interleaved round-robin across tags --
    the worst case for per-stream isolation."""
    per = {f"s{index:02d}": traffic_for(index) for index in range(streams)}
    longest = max(len(chunks) for chunks in per.values())
    return [
        (tag, chunks[round_])
        for round_ in range(longest)
        for tag, chunks in per.items()
        if round_ < len(chunks)
    ]


def remote_events(remote, pairs):
    """Mirror of :func:`tests.serve.test_server.offline_events` driven
    through a remote cluster matcher: per-feed emission order AND final
    per-stream results."""
    mux = MultiStreamScanner(remote)
    events: dict[str, list] = {}
    for tag, chunk in pairs:
        events.setdefault(tag, [])
        for match in mux.feed(tag, chunk):
            events[tag].append((match.rule, match.end))
    for tag in mux.streams:
        for match in mux.finish(tag):
            events[tag].append((match.rule, match.end))
    return events, mux.results()


class _Proxies:
    """One no-fault FaultProxy in front of every shard address."""

    def __init__(self, addresses, faults_for=None):
        self.proxies = [
            FaultProxy(address, faults=(faults_for or {}).get(index, ()))
            for index, address in enumerate(addresses)
        ]

    def __enter__(self) -> list[tuple[str, int]]:
        for proxy in self.proxies:
            proxy.start()
        return [proxy.address for proxy in self.proxies]

    def __exit__(self, *exc) -> None:
        for proxy in self.proxies:
            proxy.stop()


# -- the differential ------------------------------------------------------
class TestClusterDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_three_shards_equal_offline_on_64_streams(self, engine):
        """64 interleaved streams through 3 network shards (behind TCP
        interposers) == one offline scanner, event for event."""
        pairs = interleaved_pairs()
        offline = offline_events(RulesetMatcher(RULES), pairs, engine=engine)
        offline_results = MultiStreamScanner(
            RulesetMatcher(RULES), engine=engine
        ).scan_tagged(pairs)

        with LocalShardCluster(RULES, shards=3, engine=engine) as cluster:
            with _Proxies(cluster.addresses) as endpoints:
                with RemoteShardedMatcher(endpoints) as remote:
                    events, results = remote_events(remote, pairs)

        assert events == offline
        assert set(results) == set(offline_results)
        for tag, result in offline_results.items():
            assert results[tag].bytes_scanned == result.bytes_scanned
            assert results[tag].matches == result.matches

    def test_remote_equals_in_process_sharded_matcher(self):
        """Same shard policy, same answers: the network cluster is
        observationally a ShardedMatcher with a wire in the middle."""
        data = b"za 1234 abc ..aaab 99 xyz"
        streams = [b"zabc", b"12345zzz", b"..aaab then xyz"]
        sharded = ShardedMatcher(RULES, shards=3)
        with LocalShardCluster(RULES, shards=3) as cluster:
            with RemoteShardedMatcher(cluster.addresses) as remote:
                local = sharded.scan(data)
                over_wire = remote.scan(data)
                assert over_wire.matches == local.matches
                assert over_wire.bytes_scanned == local.bytes_scanned
                assert remote.matched_rules(data) == sharded.matched_rules(data)
                assert [r.matches for r in remote.scan_many(streams)] == [
                    r.matches for r in sharded.scan_many(streams)
                ]

    def test_shard_assignment_is_the_parallel_policy(self):
        """LocalShardCluster buckets rules exactly like shard_rules over
        the deduplicated list -- one policy, local or networked."""
        noisy = [*RULES, ("hit", "abc"), ("hit", "different-pattern")]
        unique, skipped = dedupe_rules(noisy)
        cluster = LocalShardCluster(noisy, shards=3)  # never started
        assert cluster.buckets == shard_rules(unique, 3)
        assert cluster.duplicate_skipped == skipped
        assert cluster.rule_count == len(unique)


# -- shard failure ---------------------------------------------------------
class TestShardFailure:
    def test_mid_flight_rst_yields_partial_result_error(self):
        """Shard 1's connection is RST mid-way through the second FEED
        frame (deterministic byte offset).  The second feed must raise
        ClusterPartialResultError naming shard 1 and stream s1, with the
        first feed's delivered matches intact."""
        # wire bytes on shard 1's connection, in order (the first
        # session on a fresh matcher always claims wire tag "<tag>~1"):
        wire = "s1~1"
        first_feed = (
            len(f"OPEN {wire}\n")
            + len(f"FEED {wire} 4\n") + 4
            + len("PING\n")
        )
        # cut after the second FEED frame's payload, before its PING:
        # the first feed has fully round-tripped (feed() awaits the
        # PONG), the second can never complete
        cut = first_feed + len(f"FEED {wire} 4\n") + 4

        with LocalShardCluster(RULES, shards=3) as cluster:
            faults = {1: [Fault("rst", cut)]}
            with _Proxies(cluster.addresses, faults_for=faults) as endpoints:
                with RemoteShardedMatcher(endpoints) as remote:
                    with pytest.raises(ClusterPartialResultError) as excinfo:
                        with remote.session(stream="s1") as session:
                            delivered = session.feed(b"zabc")
                            assert [(m.rule, m.end) for m in delivered] == [
                                ("hit", 4)
                            ]
                            session.feed(b"zabc")  # dies on shard 1

        err = excinfo.value
        assert err.op == "FEED"
        assert err.shard == 1
        assert err.address == endpoints[1]
        assert "s1" in err.streams
        # the first feed's matches survive the failure
        assert [(m.rule, m.end) for m in err.delivered["s1"]] == [("hit", 4)]
        assert isinstance(err.__cause__, (ConnectionError, OSError))
        assert [failure[0] for failure in err.failures] == [1]

    def test_killed_shard_yields_partial_result_error(self):
        """kill_shard (no proxy, no drain) mid-session: same error
        surface as a network fault."""
        with LocalShardCluster(RULES, shards=3) as cluster:
            with RemoteShardedMatcher(cluster.addresses) as remote:
                session = remote.session(stream="victim")
                assert [(m.rule, m.end) for m in session.feed(b"zabc")] == [
                    ("hit", 4)
                ]
                cluster.kill_shard(2)
                with pytest.raises(ClusterPartialResultError) as excinfo:
                    for _ in range(50):  # the RST may take a beat to land
                        session.feed(b"12345")
        err = excinfo.value
        assert err.shard == 2
        assert "victim" in err.streams
        delivered = [(m.rule, m.end) for m in err.delivered["victim"]]
        assert delivered[0] == ("hit", 4)

    def test_restart_and_reattach_recovers(self):
        """A restarted shard (new ephemeral port) plus reattach()
        restores full service for sessions opened afterwards."""
        with LocalShardCluster(RULES, shards=3) as cluster:
            with RemoteShardedMatcher(cluster.addresses) as remote:
                before = remote.scan(b"zabc 123")
                cluster.kill_shard(0)
                with pytest.raises(RuntimeError, match="still running"):
                    cluster.restart_shard(1)
                address = cluster.restart_shard(0)
                remote.reattach(0, address=address, retries=5)
                after = remote.scan(b"zabc 123")
                assert after.matches == before.matches
                assert after.bytes_scanned == before.bytes_scanned


# -- session semantics -----------------------------------------------------
class TestClusterSession:
    def test_session_surface(self):
        with LocalShardCluster(RULES, shards=2) as cluster:
            with RemoteShardedMatcher(cluster.addresses) as remote:
                sunk = []
                with remote.session(stream="tag", on_match=sunk.append) as s:
                    new = s.feed(b"zabc")
                    assert [(m.rule, m.end, m.stream) for m in new] == [
                        ("hit", 4, "tag")
                    ]
                result = s.result()
                assert result.bytes_scanned == 4
                assert result.matches == {"hit": [4]}
                assert [m.rule for m in sunk] == ["hit"]
                assert len(s.summaries()) == 2
                assert s.finish() == []  # idempotent
                with pytest.raises(RuntimeError, match=r"feed\(\) after finish"):
                    s.feed(b"more")

    def test_end_anchors_gate_until_finish(self):
        """$-anchored rules fire only at finish(), exactly like offline
        sessions (the remote CLOSE fans out end-of-data)."""
        with LocalShardCluster(RULES, shards=3) as cluster:
            with RemoteShardedMatcher(cluster.addresses) as remote:
                session = remote.session(stream="anchored")
                assert session.feed(b"..xyz") == []
                unlocked = session.finish()
                assert [(m.rule, m.end) for m in unlocked] == [("tail", 5)]

    def test_summaries_before_finish_raises(self):
        with LocalShardCluster(RULES, shards=2) as cluster:
            with RemoteShardedMatcher(cluster.addresses) as remote:
                session = remote.session()
                session.feed(b"zabc")
                with pytest.raises(RuntimeError, match="not finished"):
                    session.summaries()
                session.finish()
                assert len(session.summaries()) == 2


# -- construction, spec, stats ---------------------------------------------
class TestClusterConstruction:
    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            RemoteShardedMatcher([])

    def test_unreachable_shard_names_itself(self):
        with pytest.raises(ConnectionError, match=r"cannot attach shard 0"):
            RemoteShardedMatcher([("127.0.0.1", 1)], retries=0)

    def test_parse_endpoint_rejects_bad_port(self):
        with pytest.raises(ValueError):
            parse_endpoint("host:notaport")

    def test_spec_round_trip(self):
        spec = ClusterSpec.spawn(RULES, shards=2)
        assert spec.mode == "spawn"
        with pytest.raises(ValueError, match="connect\\(\\) is for attach"):
            spec.connect()
        cluster = spec.start()
        try:
            attach = ClusterSpec.attach(
                [f"{host}:{port}" for host, port in cluster.addresses]
            )
            assert attach.mode == "attach"
            with pytest.raises(ValueError, match="start\\(\\) is for spawn"):
                attach.start()
            with attach.connect(retries=2) as remote:
                assert remote.scan(b"zabc").matches == {"hit": [4]}
        finally:
            cluster.stop()

    def test_spawn_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ClusterSpec.spawn(RULES, shards=0)

    def test_attach_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterSpec.attach([])

    def test_stats_span_every_shard(self):
        with LocalShardCluster(RULES, shards=3) as cluster:
            with RemoteShardedMatcher(cluster.addresses) as remote:
                remote.ping()
                remote.scan(b"zabc")
                per_shard = remote.shard_stats()
                assert len(per_shard) == 3
                merged = remote.stats()
                assert merged.workers == 3
                # every shard carried the fanned-out stream
                assert all(s.streams_total >= 1 for s in per_shard)
                assert remote.engine == "remote"
                assert remote.skipped == []
