"""Tests for the Glushkov NCA construction against the paper's figures."""

import pytest

from repro.nca.automaton import Guard, IncAction, SetAction
from repro.nca.glushkov import build_nca
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify


def build(pattern: str):
    return build_nca(simplify(parse_to_ast(pattern)))


class TestStructure:
    def test_homogeneous(self):
        """All transitions into a state share its predicate by design."""
        nca = build(".*a(bc){2,3}d")
        for t in nca.transitions:
            assert nca.predicate_of(t.target) is not None

    def test_positions_match_leaves(self):
        nca = build("ab[cd]")
        assert nca.num_states == 4  # q0 + 3 positions

    def test_initial_pure(self):
        nca = build("a{2,3}")
        assert nca.is_pure(nca.initial)

    def test_counter_per_instance(self):
        nca = build("a{2,3}b{4,5}")
        assert len(nca.counter_bounds) == 2
        assert nca.counter_bounds == {0: 3, 1: 5}

    def test_rejects_unbounded(self):
        with pytest.raises(ValueError):
            build_nca(parse_to_ast("a{2,}"))

    def test_rejects_tiny_bounds(self):
        with pytest.raises(ValueError):
            build_nca(parse_to_ast("a{0,1}"))


class TestFig4a:
    """a(bc){1,3}d -- Figure 4(a) of the paper."""

    def test_exact_shape(self):
        nca = build("a(bc){1,3}d")
        # q0 + a b c d = 5 states
        assert nca.num_states == 5
        # one counter bounded by 3
        assert nca.counter_bounds == {0: 3}
        # b and c carry the counter, a and d are pure
        by_pred = {
            nca.predicate_of(q).to_pattern(): q
            for q in nca.states
            if nca.predicate_of(q) is not None
        }
        assert nca.is_pure(by_pred["a"]) and nca.is_pure(by_pred["d"])
        assert nca.counters_of(by_pred["b"]) == {0}
        assert nca.counters_of(by_pred["c"]) == {0}

    def test_loop_guard_and_action(self):
        nca = build("a(bc){1,3}d")
        by_pred = {
            nca.predicate_of(q).to_pattern(): q
            for q in nca.states
            if nca.predicate_of(q) is not None
        }
        loops = [
            t
            for t in nca.out_transitions(by_pred["c"])
            if t.target == by_pred["b"]
        ]
        assert len(loops) == 1
        (loop,) = loops
        assert loop.guard == (Guard(0, 1, 2),)  # x < 3
        assert loop.actions == (IncAction(0),)

    def test_entry_action(self):
        nca = build("a(bc){1,3}d")
        by_pred = {
            nca.predicate_of(q).to_pattern(): q
            for q in nca.states
            if nca.predicate_of(q) is not None
        }
        entries = [
            t
            for t in nca.out_transitions(by_pred["a"])
            if t.target == by_pred["b"]
        ]
        assert entries[0].actions == (SetAction(0, 1),)

    def test_exit_unguarded_when_lo_is_one(self):
        # m = 1: exit guard 1 <= x <= 3 is trivially true, so omitted
        nca = build("a(bc){1,3}d")
        by_pred = {
            nca.predicate_of(q).to_pattern(): q
            for q in nca.states
            if nca.predicate_of(q) is not None
        }
        exits = [
            t
            for t in nca.out_transitions(by_pred["c"])
            if t.target == by_pred["d"]
        ]
        assert exits[0].guard == ()


class TestFig1:
    """Sigma* s1 (s2 (s3 s4){m,n} s5){k} s6 with two counters (Fig. 1)."""

    def test_counter_sets_per_state(self):
        nca = build(".*1(2(34){2,3}5){4}6")
        by_pred = {
            nca.predicate_of(q).to_pattern(): q
            for q in nca.states
            if nca.predicate_of(q) is not None
        }
        # q3 (s2): outer counter only; q4, q5 (s3, s4): both; q6 (s5): outer
        assert nca.counters_of(by_pred["2"]) == {0}
        assert nca.counters_of(by_pred["3"]) == {0, 1}
        assert nca.counters_of(by_pred["4"]) == {0, 1}
        assert nca.counters_of(by_pred["5"]) == {0}
        assert nca.is_pure(by_pred["6"])

    def test_outer_loop_edge(self):
        nca = build(".*1(2(34){2,3}5){4}6")
        by_pred = {
            nca.predicate_of(q).to_pattern(): q
            for q in nca.states
            if nca.predicate_of(q) is not None
        }
        loops = [
            t
            for t in nca.out_transitions(by_pred["5"])
            if t.target == by_pred["2"]
        ]
        (loop,) = loops
        assert Guard(0, 1, 3) in loop.guard  # x < k with k = 4
        assert IncAction(0) in loop.actions

    def test_final_guard_exact(self):
        nca = build(".*1(2(34){2,3}5){4}6")
        by_pred = {
            nca.predicate_of(q).to_pattern(): q
            for q in nca.states
            if nca.predicate_of(q) is not None
        }
        exits = [
            t
            for t in nca.out_transitions(by_pred["5"])
            if t.target == by_pred["6"]
        ]
        assert exits[0].guard == (Guard(0, 4, 4),)  # x = k


class TestInstances:
    def test_instance_metadata(self):
        nca = build("x(ab){2,9}y")
        (info,) = nca.instances
        assert (info.lo, info.hi) == (2, 9)
        assert len(info.body) == 2
        assert len(info.first) == 1 and len(info.last) == 1
        assert not info.single_class_body

    def test_single_class_body_flag(self):
        nca = build("x[ab]{2,9}y")
        assert nca.instances[0].single_class_body

    def test_preorder_indices_match_collect(self):
        from repro.regex.ast import collect_repeats

        ast = simplify(parse_to_ast("a{2}(b{3}c{4,6}){2}"))
        nca = build_nca(ast)
        collected = collect_repeats(ast)
        assert [i.instance for i in nca.instances] == [c.index for c in collected]
        assert [(i.lo, i.hi) for i in nca.instances] == [
            (c.lo, c.hi) for c in collected
        ]


class TestNullableBodies:
    def test_nullable_body_exit_unguarded(self):
        # (a?b?){3}: empty passes pad the count, so no exit guard
        nca = build("(a?b?){3,3}")
        for state, guards in nca.finals.items():
            assert guards == ()

    def test_star_wrapped_counting(self):
        # (a{2,3})*: exit of the repeat loops back via the star
        nca = build("(a{2,3})*")
        state = next(q for q in nca.states if not nca.is_pure(q))
        loops = [t for t in nca.out_transitions(state) if t.target == state]
        # one increment loop (x < 3 / x++) and one star re-entry (x := 1)
        actions = {t.actions for t in loops}
        assert (IncAction(0),) in actions
        assert (SetAction(0, 1),) in actions
