"""Unit tests for the NCA data model (Definition 2.1)."""

import pytest

from repro.nca.automaton import (
    Guard,
    IncAction,
    NCA,
    SetAction,
    Transition,
)
from repro.regex.charclass import CharClass


def tiny_nca():
    """Hand-built NCA for Sigma* s{2} (Example 3.2 of the paper)."""
    sigma = CharClass.of_char("x")
    return NCA(
        predicates=[None, CharClass.sigma(), sigma],
        counters_of=[frozenset(), frozenset(), frozenset({0})],
        transitions=[
            Transition(0, 1),
            Transition(1, 1),
            Transition(0, 2, actions=(SetAction(0, 1),)),
            Transition(1, 2, actions=(SetAction(0, 1),)),
            Transition(2, 2, guard=(Guard(0, 1, 1),), actions=(IncAction(0),)),
        ],
        finals={2: (Guard(0, 2, 2),)},
        counter_bounds={0: 2},
    )


class TestGuards:
    def test_satisfied(self):
        guard = Guard(0, 2, 5)
        assert guard.satisfied(((0, 3),))
        assert not guard.satisfied(((0, 1),))
        assert not guard.satisfied(((0, 6),))

    def test_missing_counter_raises(self):
        with pytest.raises(KeyError):
            Guard(1, 0, 5).satisfied(((0, 3),))

    def test_describe(self):
        assert Guard(0, 2, 2).describe() == "x0 = 2"
        assert Guard(0, 1, 4).describe() == "1 <= x0 <= 4"


class TestValidation:
    def test_valid_construction(self):
        nca = tiny_nca()
        assert nca.num_states == 3
        assert nca.is_pure(0) and nca.is_pure(1)
        assert not nca.is_pure(2)

    def test_rejects_guard_on_foreign_counter(self):
        with pytest.raises(ValueError):
            NCA(
                predicates=[None, CharClass.sigma()],
                counters_of=[frozenset(), frozenset()],
                transitions=[Transition(0, 1, guard=(Guard(0, 1, 2),))],
                finals={},
                counter_bounds={0: 2},
            )

    def test_rejects_unassigned_target_counter(self):
        with pytest.raises(ValueError):
            NCA(
                predicates=[None, CharClass.sigma()],
                counters_of=[frozenset(), frozenset({0})],
                transitions=[Transition(0, 1)],  # x0 neither set nor inherited
                finals={},
                counter_bounds={0: 2},
            )

    def test_rejects_increment_without_source(self):
        with pytest.raises(ValueError):
            NCA(
                predicates=[None, CharClass.sigma()],
                counters_of=[frozenset(), frozenset({0})],
                transitions=[Transition(0, 1, actions=(IncAction(0),))],
                finals={},
                counter_bounds={0: 2},
            )

    def test_rejects_transition_into_initial(self):
        with pytest.raises(ValueError):
            NCA(
                predicates=[None, CharClass.sigma()],
                counters_of=[frozenset(), frozenset()],
                transitions=[Transition(1, 0)],
                finals={},
                counter_bounds={},
            )

    def test_rejects_final_guard_on_foreign_counter(self):
        with pytest.raises(ValueError):
            NCA(
                predicates=[None, CharClass.sigma()],
                counters_of=[frozenset(), frozenset()],
                transitions=[Transition(0, 1)],
                finals={1: (Guard(0, 1, 1),)},
                counter_bounds={0: 2},
            )


class TestTokenSemantics:
    def test_initial_token(self):
        assert tiny_nca().initial_token() == (0, ())

    def test_apply_transition_set(self):
        nca = tiny_nca()
        t = nca.out_transitions(0)[1]  # 0 -> 2 with x := 1
        assert t.target == 2
        token = nca.apply_transition((0, ()), t)
        assert token == (2, ((0, 1),))

    def test_apply_transition_guard_blocks(self):
        nca = tiny_nca()
        loop = [t for t in nca.out_transitions(2) if t.target == 2][0]
        assert nca.apply_transition((2, ((0, 1),)), loop) == (2, ((0, 2),))
        assert nca.apply_transition((2, ((0, 2),)), loop) is None

    def test_token_successors_respects_predicate(self):
        nca = tiny_nca()
        succ_x = set(nca.token_successors((0, ()), ord("x")))
        assert (2, ((0, 1),)) in succ_x
        succ_y = set(nca.token_successors((0, ()), ord("y")))
        assert all(state != 2 for state, _ in succ_y)

    def test_final_token(self):
        nca = tiny_nca()
        assert nca.is_final_token((2, ((0, 2),)))
        assert not nca.is_final_token((2, ((0, 1),)))
        assert not nca.is_final_token((1, ()))

    def test_boundedness(self):
        nca = tiny_nca()
        assert nca.is_token_bounded((2, ((0, 2),)))
        assert not nca.is_token_bounded((2, ((0, 3),)))

    def test_counter_values_domain(self):
        assert list(tiny_nca().counter_values(0)) == [1, 2]

    def test_describe_is_stable(self):
        text = tiny_nca().describe()
        assert "q0" in text and "final" in text and "x0" in text
