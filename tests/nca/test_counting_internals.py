"""Tests for counting-set internals: masks, non-strict mode, storage."""

from repro.nca.counting_sets import (
    CountingSetExecutor,
    StorageKind,
    _range_mask,
)
from repro.nca.glushkov import build_nca
from repro.regex.parser import parse
from repro.regex.rewrite import simplify


def build(pattern: str):
    return build_nca(simplify(parse(pattern).search_ast()))


class TestRangeMask:
    def test_single_value(self):
        assert _range_mask(3, 3) == 0b100

    def test_full_range(self):
        assert _range_mask(1, 4) == 0b1111

    def test_clamps_below_domain(self):
        assert _range_mask(0, 2) == 0b11

    def test_empty_range(self):
        assert _range_mask(5, 4) == 0

    def test_mid_range(self):
        assert _range_mask(2, 3) == 0b110


class TestNonStrictMode:
    def test_reset_wins_semantics(self):
        """Non-strict scalars keep the newest valuation (hardware
        reset-wins); this under-approximates but never crashes."""
        nca = build("x{2}")
        counter_states = [q for q in nca.states if not nca.is_pure(q)]
        executor = CountingSetExecutor(
            nca, unambiguous_states=counter_states, strict=False
        )
        for byte in b"xxx":
            executor.step(byte)  # no AmbiguityViolationError
        # tokens were dropped, so acceptance may be missed -- but the
        # engine stays live and bounded
        assert executor.memory_bits() < 20


class TestStorageIntrospection:
    def test_kinds_exposed(self):
        nca = build("a{2,5}")
        executor = CountingSetExecutor(nca)
        kinds = set(executor.kinds.values())
        assert StorageKind.PURE in kinds
        assert StorageKind.BITVECTOR in kinds

    def test_stores_clear_on_reset(self):
        nca = build("a{2,5}")
        executor = CountingSetExecutor(nca)
        executor.step(ord("a"))
        executor.reset()
        for state, store in executor.stores.items():
            if state == nca.initial:
                continue
            assert store.is_empty()

    def test_bitvector_mask_evolution(self):
        nca = build("a{3}")
        executor = CountingSetExecutor(nca)
        body = next(q for q in nca.states if not nca.is_pure(q))
        executor.step(ord("a"))
        assert executor.stores[body].mask == 0b001  # one token, value 1
        executor.step(ord("a"))
        assert executor.stores[body].mask == 0b011  # values 1 and 2
        executor.step(ord("a"))
        assert executor.stores[body].mask == 0b111  # saturated window
        executor.step(ord("a"))
        assert executor.stores[body].mask == 0b111  # value-3 token died
