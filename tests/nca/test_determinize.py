"""Tests for subset construction: correctness and the blowup claims."""

import pytest

from repro.nca.determinize import DFA, DFATooLargeError, determinize
from repro.nca.glushkov import build_nca
from repro.regex.oracle import accepts, match_ends
from repro.regex.parser import parse, parse_to_ast
from repro.regex.rewrite import simplify
from repro.regex.unfold import unfold_all

from tests.helpers import random_strings


def dfa_for(pattern: str, search: bool = False, max_states=100_000) -> DFA:
    parsed = parse(pattern)
    ast = parsed.search_ast() if search else parsed.ast
    pure = unfold_all(simplify(ast))
    return determinize(build_nca(pure), max_states=max_states)


class TestCorrectness:
    PATTERNS = ["a{2,4}b", "(ab|cd){2}", "a*b{2,3}", "(a|b){3}c"]

    def test_matches_oracle(self):
        for pattern in self.PATTERNS:
            dfa = dfa_for(pattern)
            ast = simplify(parse_to_ast(pattern))
            for text in random_strings("abcd", 60, 10, seed=17):
                assert dfa.accepts(text) == accepts(ast, text), (pattern, text)

    def test_match_ends_matches_oracle(self):
        parsed = parse("a{2,3}")
        search = simplify(parsed.search_ast())
        dfa = dfa_for("a{2,3}", search=True)
        for text in random_strings("ab", 30, 12, seed=19):
            assert dfa.match_ends(text) == match_ends(search, text)

    def test_rejects_counters(self):
        nca = build_nca(simplify(parse_to_ast("a{2,5}")))
        with pytest.raises(ValueError):
            determinize(nca)

    def test_single_lookup_per_symbol(self):
        dfa = dfa_for("ab")
        state = dfa.initial
        for byte in b"ab":
            state = dfa.transitions[state][byte]
        assert state in dfa.accepting


class TestSuccinctness:
    """The Section 1 claims, measured."""

    def test_anchored_counting_dfa_linear(self):
        sizes = [dfa_for(f"^a{{{n}}}").num_states for n in (8, 16, 32)]
        assert sizes[1] - sizes[0] == 8
        assert sizes[2] - sizes[1] == 16

    def test_unanchored_window_dfa_exponential(self):
        """Sigma* a .{n}: the classic 2^n witness (the DFA must remember
        which of the last n+1 positions held an 'a')."""
        sizes = []
        for n in (4, 6, 8):
            dfa = dfa_for(f"a.{{{n}}}$", search=True)
            sizes.append(dfa.num_states)
        assert sizes[1] >= 4 * sizes[0] / 2
        assert sizes[2] > 200  # ~2^(n+1) states at n=8

    def test_blowup_hits_cap(self):
        with pytest.raises(DFATooLargeError):
            dfa_for("a.{18}$", search=True, max_states=5_000)

    def test_nca_stays_tiny_where_dfa_explodes(self):
        """The codesign's point: the NCA for Sigma* a .{n} has O(1)
        states and one counter, while the DFA is exponential."""
        parsed = parse("a.{12}$")
        nca = build_nca(simplify(parsed.search_ast()))
        assert nca.num_states <= 4
        with pytest.raises(DFATooLargeError):
            dfa_for("a.{12}$", search=True, max_states=4_000)
