"""Tests for the counting-set (counter/bit-vector) execution engine."""

import pytest

from repro.analysis.hybrid import analyze_hybrid
from repro.nca.counting_sets import (
    AmbiguityViolationError,
    CountingSetExecutor,
    StorageKind,
    classify_states,
    counting_accepts,
    counting_match_ends,
)
from repro.nca.execution import nca_match_ends
from repro.nca.glushkov import build_nca
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify

from tests.helpers import random_strings


def build(pattern: str):
    return build_nca(simplify(parse_to_ast(pattern)))


class TestClassification:
    def test_default_is_conservative(self):
        nca = build(".*a{2,4}")
        kinds = classify_states(nca)
        for state in nca.states:
            if nca.is_pure(state):
                assert kinds[state] is StorageKind.PURE
            else:
                assert kinds[state] is StorageKind.BITVECTOR

    def test_proven_states_become_scalar(self):
        nca = build("a{2,4}")
        counter_states = [q for q in nca.states if not nca.is_pure(q)]
        kinds = classify_states(nca, unambiguous_states=counter_states)
        for state in counter_states:
            assert kinds[state] is StorageKind.SCALAR

    def test_multi_counter_states_general(self):
        nca = build("(a(bc){2,3}d){2,3}")
        kinds = classify_states(nca)
        multi = [q for q in nca.states if len(nca.counters_of(q)) == 2]
        assert multi
        for state in multi:
            assert kinds[state] is StorageKind.GENERAL


class TestEquivalence:
    PATTERNS = [
        ".*a{2,4}",
        ".*[ab]a{2,3}b",
        "a{3}b{2,5}",
        "(ab){2,4}",
        ".*(a(bc){2}){2}",
        "(a|b){2,3}c{2}",
    ]

    def test_matches_token_interpreter(self):
        for pattern in self.PATTERNS:
            nca = build(pattern)
            for text in random_strings("abc", 60, 12, seed=23):
                assert counting_match_ends(nca, text) == nca_match_ends(nca, text), (
                    pattern,
                    text,
                )

    def test_scalar_storage_with_analysis(self):
        """Analysis-backed scalar storage stays equivalent."""
        for pattern in ["a{2,4}b", "x(ab){2,3}y", "[^a]a{3}"]:
            ast = simplify(parse_to_ast(pattern))
            result = analyze_hybrid(ast)
            nca = result.nca
            good = result.unambiguous_counter_states()
            for text in random_strings("abxy", 60, 10, seed=31):
                assert counting_match_ends(nca, text, good) == nca_match_ends(
                    nca, text
                ), (pattern, text)


class TestScalarStrictness:
    def test_violation_detected_when_misclassified(self):
        """Deliberately classifying an ambiguous state as scalar trips
        the runtime soundness check."""
        nca = build(".*x{2}")
        counter_states = [q for q in nca.states if not nca.is_pure(q)]
        executor = CountingSetExecutor(nca, unambiguous_states=counter_states)
        with pytest.raises(AmbiguityViolationError):
            executor.step(ord("x"))
            executor.step(ord("x"))
            executor.step(ord("x"))

    def test_sound_classification_never_trips(self):
        ast = simplify(parse_to_ast(".*[^a]a{2,5}"))
        result = analyze_hybrid(ast)
        executor = CountingSetExecutor(
            result.nca, unambiguous_states=result.unambiguous_counter_states()
        )
        for text in random_strings("ab", 40, 16, seed=3):
            executor.reset()
            for byte in text.encode():
                executor.step(byte)  # must not raise


class TestMemoryAccounting:
    def test_scalar_beats_bitvector(self):
        """The paper's core claim: O(log M) vs O(M) bits per state."""
        nca = build("[^a]a{1000}")
        counter_states = [q for q in nca.states if not nca.is_pure(q)]
        scalar = CountingSetExecutor(nca, unambiguous_states=counter_states)
        vector = CountingSetExecutor(nca, unambiguous_states=())
        assert scalar.memory_bits() < vector.memory_bits() / 50

    def test_bit_counts(self):
        nca = build("a{8}")
        vector = CountingSetExecutor(nca, unambiguous_states=())
        # 1 pure q0 bit + body state: 1 activity bit + 8 vector bits
        assert vector.memory_bits() == 1 + 1 + 8
        scalar = CountingSetExecutor(
            nca, unambiguous_states=[q for q in nca.states if not nca.is_pure(q)]
        )
        # 1 + 1 + ceil(log2(9)) = 4 bits of counter
        assert scalar.memory_bits() == 1 + 1 + 4
