"""Property-based differential tests: oracle vs NCA engines."""

from hypothesis import given, settings

from tests.helpers import engines_match_ends, inputs, regexes


@settings(max_examples=200, deadline=None)
@given(regexes(), inputs())
def test_three_engines_agree(ast, data):
    """Derivative oracle == token interpreter == counting-set engine.

    This is the project's central correctness property: every
    execution strategy implements the same language.
    """
    want, got_tokens, got_counting = engines_match_ends(ast, data)
    assert got_tokens == want
    assert got_counting == want


@settings(max_examples=100, deadline=None)
@given(regexes(max_bound=4), inputs(max_len=10))
def test_analysis_backed_scalars_agree(ast, data):
    """Scalar storage driven by the hybrid analysis stays faithful and
    never trips the ambiguity-violation check."""
    from repro.analysis.hybrid import analyze_hybrid
    from repro.nca.counting_sets import counting_match_ends
    from repro.nca.execution import nca_match_ends
    from repro.regex.rewrite import simplify

    simplified = simplify(ast)
    result = analyze_hybrid(simplified)
    if result.nca is None:
        return
    good = result.unambiguous_counter_states()
    assert counting_match_ends(result.nca, data, good) == nca_match_ends(
        result.nca, data
    )
