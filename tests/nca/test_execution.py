"""Tests for the token-set NCA interpreter."""

from repro.nca.execution import NCAExecutor, nca_accepts, nca_match_ends
from repro.nca.glushkov import build_nca
from repro.regex.oracle import accepts, match_ends
from repro.regex.parser import parse, parse_to_ast
from repro.regex.rewrite import simplify

from tests.helpers import random_strings


def build(pattern: str):
    return build_nca(simplify(parse_to_ast(pattern)))


class TestAcceptance:
    PATTERNS = [
        "a{3}",
        "a{2,4}b",
        "(ab){2,3}",
        "(a|b){2}c",
        "x(a(bc){2}y){2}z",
        "(a?b){2,3}",
        "a*b{2,3}a*",
    ]

    def test_matches_oracle_on_random_strings(self):
        for pattern in self.PATTERNS:
            ast = simplify(parse_to_ast(pattern))
            nca = build_nca(ast)
            for text in random_strings("abcxyz", 80, 12, seed=11):
                assert nca_accepts(nca, text) == accepts(ast, text), (pattern, text)

    def test_match_ends_against_oracle(self):
        for pattern in ["ab", "a{2,3}", "(ab){2}"]:
            parsed = parse(pattern)
            search = simplify(parsed.search_ast())
            nca = build_nca(search)
            for text in random_strings("ab", 40, 10, seed=5):
                assert nca_match_ends(nca, text) == match_ends(search, text)

    def test_dead_configuration(self):
        nca = build("abc")
        executor = NCAExecutor(nca)
        executor.run("ax")
        assert executor.dead

    def test_reset(self):
        nca = build("ab")
        executor = NCAExecutor(nca)
        executor.run("ab")
        assert executor.accepting
        executor.reset()
        assert not executor.accepting
        executor.run("ab")
        assert executor.accepting


class TestDegreeTracking:
    def test_unambiguous_keeps_degree_one(self):
        # anchored a{3}: single token marches through
        nca = build("a{3}")
        executor = NCAExecutor(nca)
        executor.run("aaa")
        for state in nca.states:
            if not nca.is_pure(state):
                assert executor.stats.degree(state) <= 1

    def test_ambiguous_state_reaches_degree_two(self):
        # Sigma* x{2} (Example 3.2): tokens with values 1 and 2 coexist
        nca = build(".*x{2}")
        executor = NCAExecutor(nca)
        executor.run("xxx")
        counter_states = [q for q in nca.states if not nca.is_pure(q)]
        assert any(executor.stats.degree(q) >= 2 for q in counter_states)

    def test_token_count_statistics(self):
        nca = build(".*a{2,4}")
        executor = NCAExecutor(nca)
        executor.run("aaaa")
        assert executor.stats.max_tokens >= 3
        assert executor.stats.steps == 4
