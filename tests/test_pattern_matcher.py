"""Tests for PatternMatcher and end-anchor semantics."""

import pytest

from repro.matching import PatternMatcher, RulesetMatcher


class TestAnchors:
    def test_unanchored_search(self):
        matcher = PatternMatcher("ab")
        assert matcher.search(b"xxabxxab") == [4, 8]

    def test_start_anchor(self):
        matcher = PatternMatcher("^ab")
        assert matcher.search(b"abxxab") == [2]

    def test_end_anchor_filters_positions(self):
        matcher = PatternMatcher("ab$")
        assert matcher.search(b"abxxab") == [6]
        assert matcher.search(b"abxx") == []

    def test_fully_anchored_is_exact_match(self):
        matcher = PatternMatcher("^a{2,4}$")
        assert matcher.matches(b"aaa")
        assert not matcher.matches(b"a")
        assert not matcher.matches(b"aaaaa")
        assert not matcher.matches(b"aaab")

    def test_counting_with_end_anchor(self):
        matcher = PatternMatcher(r"[0-9]{3,5}$")
        assert matcher.matches(b"id-1234")
        assert not matcher.matches(b"1234-id")

    def test_nullable_matches_trivially(self):
        matcher = PatternMatcher("a*")
        assert matcher.matches(b"zzz")
        assert matcher.search(b"zzz") == []  # no nonempty match


class TestRulesetEndAnchors:
    def test_end_anchored_rule_filtered(self):
        rules = [("tail", "xyz$"), ("anywhere", "xyz")]
        matcher = RulesetMatcher(rules)
        result = matcher.scan(b"xyz..xyz")
        assert result.matches["anywhere"] == [3, 8]
        assert result.matches["tail"] == [8]

    def test_end_anchored_rule_absent_when_not_at_end(self):
        matcher = RulesetMatcher([("tail", "xyz$")])
        assert matcher.matched_rules(b"xyz..") == set()


class TestAgainstOracle:
    @pytest.mark.parametrize(
        "pattern", ["^a{2,4}$", "ab$", "^x[yz]{1,3}$", "a{3}$"]
    )
    def test_membership_matches_oracle(self, pattern):
        from repro.regex.oracle import accepts
        from repro.regex.parser import parse
        from repro.regex.rewrite import simplify

        from tests.helpers import random_strings

        matcher = PatternMatcher(pattern)
        membership = simplify(parse(pattern).membership_ast())
        for text in random_strings("abxyz", 60, 8, seed=hash(pattern) & 0xFF):
            assert matcher.matches(text) == accepts(membership, text), (
                pattern,
                text,
            )
