"""Tests for PatternMatcher and end-anchor semantics."""

import pytest

from repro.matching import PatternMatcher, RulesetMatcher


class TestAnchors:
    def test_unanchored_search(self):
        matcher = PatternMatcher("ab")
        assert matcher.search(b"xxabxxab") == [4, 8]

    def test_start_anchor(self):
        matcher = PatternMatcher("^ab")
        assert matcher.search(b"abxxab") == [2]

    def test_end_anchor_filters_positions(self):
        matcher = PatternMatcher("ab$")
        assert matcher.search(b"abxxab") == [6]
        assert matcher.search(b"abxx") == []

    def test_fully_anchored_is_exact_match(self):
        matcher = PatternMatcher("^a{2,4}$")
        assert matcher.matches(b"aaa")
        assert not matcher.matches(b"a")
        assert not matcher.matches(b"aaaaa")
        assert not matcher.matches(b"aaab")

    def test_counting_with_end_anchor(self):
        matcher = PatternMatcher(r"[0-9]{3,5}$")
        assert matcher.matches(b"id-1234")
        assert not matcher.matches(b"1234-id")

    def test_nullable_matches_trivially(self):
        matcher = PatternMatcher("a*")
        assert matcher.matches(b"zzz")
        assert matcher.search(b"zzz") == []  # no nonempty match


class TestFinditer:
    def test_yields_match_events_with_end_offsets(self):
        from repro.session import Match

        matcher = PatternMatcher("abc")
        out = list(matcher.finditer(b"zabc..abc"))
        assert out == [Match("abc", 4, None, "abc"), Match("abc", 9, None, "abc")]

    def test_search_end_offset_matches_finditer(self):
        # search() returns match-END offsets (1-based): "abc" in b"zabc"
        # ends after byte 4 -- not the 1 a start-offset API would give
        matcher = PatternMatcher("abc")
        assert matcher.search(b"zabc") == [4]
        assert [m.end for m in matcher.finditer(b"zabc")] == [4]

    def test_chunk_boundary_off_by_one(self):
        """The classic off-by-one trap: a match whose final byte is the
        first byte of the next chunk must report the absolute stream
        offset, not a per-chunk one."""
        matcher = PatternMatcher("abc")
        whole = [m.end for m in matcher.finditer(b"xabcx")]
        for cut in range(6):
            split = [b"xabcx"[:cut], b"xabcx"[cut:]]
            assert [m.end for m in matcher.finditer(split)] == whole, cut
        # ends exactly at a boundary: last byte of chunk 1 vs first of chunk 2
        assert [m.end for m in matcher.finditer([b"xab", b"cx"])] == [4]
        assert [m.end for m in matcher.finditer([b"xabc", b"x"])] == [4]

    def test_end_anchor_yields_only_at_stream_end(self):
        matcher = PatternMatcher("ab$")
        assert [m.end for m in matcher.finditer([b"ab", b"xx", b"ab"])] == [6]
        assert list(matcher.finditer([b"ab", b"xx"])) == []

    def test_lazy_iteration(self):
        matcher = PatternMatcher("ab")
        consumed = []

        def chunks():
            for chunk in (b"ab", b"ab", b"ab"):
                consumed.append(chunk)
                yield chunk

        iterator = matcher.finditer(chunks())
        first = next(iterator)
        assert first.end == 2 and len(consumed) < 3  # input not exhausted
        assert [m.end for m in iterator] == [4, 6]

    def test_stream_tag_carried(self):
        matcher = PatternMatcher("ab")
        out = list(matcher.finditer(b"ab", stream="conn-1"))
        assert out[0].stream == "conn-1"
        assert out[0].rule == "ab"


class TestRulesetEndAnchors:
    def test_end_anchored_rule_filtered(self):
        rules = [("tail", "xyz$"), ("anywhere", "xyz")]
        matcher = RulesetMatcher(rules)
        result = matcher.scan(b"xyz..xyz")
        assert result.matches["anywhere"] == [3, 8]
        assert result.matches["tail"] == [8]

    def test_end_anchored_rule_absent_when_not_at_end(self):
        matcher = RulesetMatcher([("tail", "xyz$")])
        assert matcher.matched_rules(b"xyz..") == set()


class TestAgainstOracle:
    @pytest.mark.parametrize(
        "pattern", ["^a{2,4}$", "ab$", "^x[yz]{1,3}$", "a{3}$"]
    )
    def test_membership_matches_oracle(self, pattern):
        from repro.regex.oracle import accepts
        from repro.regex.parser import parse
        from repro.regex.rewrite import simplify

        from tests.helpers import random_strings

        matcher = PatternMatcher(pattern)
        membership = simplify(parse(pattern).membership_ast())
        for text in random_strings("abxyz", 60, 8, seed=hash(pattern) & 0xFF):
            assert matcher.matches(text) == accepts(membership, text), (
                pattern,
                text,
            )
