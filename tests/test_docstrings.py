"""Docstring contract over the public surface.

Two guarantees, enforced so the docs satellite cannot rot:

1. every symbol exported by ``repro.__all__`` carries a docstring;
2. the core user-facing symbols carry an *executable* example
   (``>>>``), and every example in the key modules actually runs
   (``doctest`` here in tier-1; CI additionally doctests the markdown
   suite under ``docs/``).
"""

import doctest
import importlib
import inspect

import pytest

import repro

#: symbols whose docstrings must contain a runnable ``>>>`` example
#: (the core surface a new user meets first; growing this list is
#: encouraged, shrinking it is an API-docs regression)
EXAMPLED = [
    "Match",
    "match_dict",
    "MatchSession",
    "MultiStreamScanner",
    "CollectorSink",
    "QueueSink",
    "RulesetMatcher",
    "PatternMatcher",
    "ScanResult",
    "ShardedMatcher",
    "merge_scan_results",
    "StreamScanner",
    "compile_tables",
    "compile_pattern",
    "compile_ruleset",
    "analyze_pattern",
    "parse",
    "simplify",
    "build_nca",
    "NetworkSimulator",
    "simulate",
    "available_backends",
    "resolve_backend",
    "parse_rule",
    "translate_rule",
    "load_rules_text",
]

#: modules whose doctests run as part of tier-1 (the CI markdown leg
#: covers docs/*.md and README.md on top)
DOCTESTED_MODULES = [
    "repro.session",
    "repro.matching",
    "repro.serve.protocol",
    "repro.serve.stats",
    "repro.serve.cluster",
    "repro.engine.parallel",
    "repro.engine.scanner",
    "repro.engine.tables",
    "repro.engine.backends.registry",
    "repro.compiler.pipeline",
    "repro.rules.content",
    "repro.rules.parser",
    "repro.rules.translate",
    "repro.rules.triage",
    "repro.rules.loader",
    "repro.workloads.snort_rules",
    "repro.analysis.hybrid",
    "repro.regex.parser",
    "repro.regex.rewrite",
    "repro.nca.glushkov",
    "repro.hardware.simulator",
]


class TestDocstrings:
    def test_every_public_symbol_documented(self):
        undocumented = []
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            doc = obj.__doc__ if not isinstance(obj, str) else True
            if not doc:
                undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    @pytest.mark.parametrize("name", EXAMPLED)
    def test_core_symbols_carry_examples(self, name):
        doc = inspect.getdoc(getattr(repro, name)) or ""
        assert ">>>" in doc, f"{name} lost its executable docstring example"


class TestDoctestsRun:
    @pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
    def test_module_doctests_pass(self, module_name):
        module = importlib.import_module(module_name)
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0, f"{module_name}: {result.failed} doctest failure(s)"
