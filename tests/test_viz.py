"""Tests for DOT export."""

from repro.compiler.pipeline import compile_pattern
from repro.nca.glushkov import build_nca
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify
from repro.viz import nca_to_dot, network_to_dot


class TestNcaDot:
    def test_structure(self):
        nca = build_nca(simplify(parse_to_ast("a(bc){1,3}d")))
        dot = nca_to_dot(nca)
        assert dot.startswith("digraph")
        assert dot.endswith("}")
        assert "doublecircle" in dot  # final state
        assert "x0++" in dot          # increment action
        assert "x0 := 1" in dot       # entry action
        assert dot.count("->") == len(nca.transitions)

    def test_counter_annotations(self):
        nca = build_nca(simplify(parse_to_ast("x(a(bc){2,3}y){4}z")))
        dot = nca_to_dot(nca)
        assert "x0,x1" in dot  # two-counter states (Fig. 1 shape)

    def test_escaping(self):
        nca = build_nca(simplify(parse_to_ast(r'"[^"]{2,4}"')))
        dot = nca_to_dot(nca)
        assert '\\"' in dot


class TestNetworkDot:
    def test_counter_module_rendered(self):
        network = compile_pattern("a(bc){2,4}d").network
        dot = network_to_dot(network)
        assert "ctr [2,4]" in dot
        assert "en_out" in dot and "fst" in dot

    def test_bitvector_module_rendered(self):
        network = compile_pattern("q.{3,9}r").network
        dot = network_to_dot(network)
        assert "bitvec [3,9]" in dot

    def test_start_and_report_marks(self):
        network = compile_pattern("ab").network
        dot = network_to_dot(network)
        assert "all-input" in dot
        assert "doublecircle" in dot
