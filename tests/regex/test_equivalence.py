"""Tests for the regex equivalence decision procedure."""

import pytest

from repro.regex.equivalence import (
    EquivalenceBudgetError,
    distinguishing_string,
    equivalent,
)
from repro.regex.oracle import accepts
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify
from repro.regex.unfold import unfold_all


def eq(a: str, b: str) -> bool:
    return equivalent(parse_to_ast(a), parse_to_ast(b))


class TestKnownIdentities:
    def test_counting_identities(self):
        assert eq("a{2,4}", "aaa?a?")
        assert eq("a{3}", "aaa")
        assert eq("a{0,2}", "(a|)(a|)" if False else "a?a?")
        assert eq("(ab){2}", "abab")
        assert eq("a{1,}", "aa*")

    def test_algebraic_identities(self):
        assert eq("(a|b)*", "(a*b*)*")
        assert eq("a(ba)*", "(ab)*a")
        assert eq("(a|b)c", "ac|bc")

    def test_non_equivalences(self):
        assert not eq("a{2,4}", "a{2,5}")
        assert not eq("a{3}", "a{2}")
        assert not eq("(ab){2}", "a{2}b{2}")
        assert not eq("a|b", "a")

    def test_large_bounds_without_unfolding(self):
        # derivative pairs stay small even for {500}: the check never
        # materializes 500 states per side
        assert eq("a{500}", "a{250}a{250}")
        assert not eq("a{500}", "a{499}")


class TestDistinguishingStrings:
    def test_witness_is_in_exactly_one_language(self):
        cases = [("a{2,4}", "a{2,5}"), ("ab|cd", "ab"), ("x{3}", "x{2,3}")]
        for a, b in cases:
            left, right = parse_to_ast(a), parse_to_ast(b)
            witness = distinguishing_string(left, right)
            assert witness is not None
            assert accepts(left, witness) != accepts(right, witness)

    def test_none_for_equivalent(self):
        assert distinguishing_string(
            parse_to_ast("a?b"), parse_to_ast("ab|b")
        ) is None

    def test_budget(self):
        with pytest.raises(EquivalenceBudgetError):
            equivalent(
                parse_to_ast("(a|b){40}"), parse_to_ast("(b|a){39}a|(b|a){40}"),
                max_pairs=5,
            )


class TestTransformationsExactlyPreserveLanguage:
    """The strong form of the rewrite/unfold correctness claims."""

    PATTERNS = [
        "a{0,1}b{3,}",
        "([a]|[b])c{2,4}",
        "(a?b){2,3}",
        "a{2,}|b?",
        "(ab){1,3}c*",
    ]

    def test_simplify_exact(self):
        for pattern in self.PATTERNS:
            ast = parse_to_ast(pattern)
            assert equivalent(ast, simplify(ast)), pattern

    def test_unfold_exact(self):
        for pattern in self.PATTERNS:
            ast = simplify(parse_to_ast(pattern))
            assert equivalent(ast, unfold_all(ast)), pattern
