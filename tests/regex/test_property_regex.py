"""Property-based tests over the regex frontend (hypothesis)."""

from hypothesis import given, settings

from repro.regex.oracle import accepts
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify
from repro.regex.unfold import unfold_all

from tests.helpers import inputs, regexes


@settings(max_examples=150, deadline=None)
@given(regexes(), inputs())
def test_simplify_preserves_language(ast, data):
    assert accepts(ast, data) == accepts(simplify(ast), data)


@settings(max_examples=150, deadline=None)
@given(regexes(), inputs())
def test_unfolding_preserves_language(ast, data):
    simplified = simplify(ast)
    assert accepts(simplified, data) == accepts(unfold_all(simplified), data)


@settings(max_examples=150, deadline=None)
@given(regexes())
def test_pattern_round_trip(ast):
    """to_pattern() output reparses to a language-equal AST."""
    reparsed = parse_to_ast(ast.to_pattern())
    # structural equality is too strong (printing may regroup), so we
    # compare languages on a deterministic input sample
    from tests.helpers import random_strings

    for text in random_strings("abc", 25, 8, seed=0):
        assert accepts(ast, text) == accepts(reparsed, text), text


@settings(max_examples=100, deadline=None)
@given(regexes(), inputs())
def test_simplify_idempotent(ast, data):
    once = simplify(ast)
    assert simplify(once) == once
