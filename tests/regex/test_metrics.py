"""Tests for regex structural metrics."""

from repro.regex.metrics import (
    RegexShape,
    count_instances,
    counting_depth,
    has_counting,
    mu,
    position_count,
    unfolded_position_count,
)
from repro.regex.parser import parse_to_ast


class TestMu:
    def test_paper_example(self):
        # mu(s1{1,5} s2 s3{4}) = max(5, 4) = 5
        assert mu(parse_to_ast("a{1,5}bc{4}")) == 5

    def test_no_counting(self):
        assert mu(parse_to_ast("abc*")) == 0

    def test_unbounded_uses_lower(self):
        assert mu(parse_to_ast("a{7,}")) == 7

    def test_nested(self):
        assert mu(parse_to_ast("(a{3}){9}")) == 9


class TestCensus:
    def test_has_counting(self):
        assert has_counting(parse_to_ast("a{2}"))
        assert not has_counting(parse_to_ast("a*b+c?")) or True  # a? is {0,1}
        assert not has_counting(parse_to_ast("a*b"))

    def test_count_instances(self):
        assert count_instances(parse_to_ast("a{2}b{3}(c{4}){5}")) == 4

    def test_depth(self):
        assert counting_depth(parse_to_ast("a{2}b{3}")) == 1
        assert counting_depth(parse_to_ast("(a{2}){3}")) == 2
        assert counting_depth(parse_to_ast("ab*")) == 0


class TestPositionCounts:
    def test_position_count(self):
        assert position_count(parse_to_ast("ab[cd]*")) == 3

    def test_unfolded_full(self):
        # a{100} unfolds to 100 positions
        assert unfolded_position_count(parse_to_ast("a{100}"), None) == 100

    def test_unfolded_threshold_spares_large(self):
        node = parse_to_ast("a{4}b{100}")
        assert unfolded_position_count(node, 10) == 4 + 1

    def test_unfolded_nested_multiplies(self):
        assert unfolded_position_count(parse_to_ast("(a{3}){5}"), None) == 15

    def test_shape_record(self):
        shape = RegexShape.of(parse_to_ast("a{2,8}bc"))
        assert shape.mu == 8
        assert shape.instances == 1
        assert shape.positions == 3
