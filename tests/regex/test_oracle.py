"""Tests for the derivative-based oracle matcher."""

from repro.regex.ast import EMPTY, EPSILON, Sym, concat, repeat, star
from repro.regex.charclass import CharClass
from repro.regex.oracle import DerivativeMatcher, accepts, derivative, match_ends
from repro.regex.parser import parse, parse_to_ast


def a_sym():
    return Sym(CharClass.of_char("a"))


class TestDerivativeLaws:
    def test_empty_and_epsilon(self):
        assert derivative(EMPTY, ord("a")) == EMPTY
        assert derivative(EPSILON, ord("a")) == EMPTY

    def test_symbol(self):
        assert derivative(a_sym(), ord("a")) == EPSILON
        assert derivative(a_sym(), ord("b")) == EMPTY

    def test_star(self):
        node = star(a_sym())
        assert derivative(node, ord("a")) == node

    def test_counting_decrements(self):
        node = repeat(a_sym(), 2, 4)
        d = derivative(node, ord("a"))
        assert d == repeat(a_sym(), 1, 3)

    def test_counting_hits_zero(self):
        node = repeat(a_sym(), 0, 1)
        d = derivative(node, ord("a"))
        assert d == EPSILON  # a{0,0} collapses

    def test_concat_nullable_head(self):
        node = concat(star(a_sym()), Sym(CharClass.of_char("b")))
        assert accepts(node, "b")
        assert accepts(node, "aab")
        assert not accepts(node, "ba")


class TestAccepts:
    CASES = [
        ("a{3}", {"aaa": True, "aa": False, "aaaa": False}),
        ("a{2,4}", {"a": False, "aa": True, "aaaa": True, "aaaaa": False}),
        ("(ab){2,3}", {"abab": True, "ababab": True, "ab": False, "abababab": False}),
        ("a{0,2}b", {"b": True, "ab": True, "aab": True, "aaab": False}),
        ("a{2,}", {"a": False, "aa": True, "a" * 17: True}),
        ("(a|b){2}", {"ab": True, "ba": True, "aa": True, "a": False}),
        ("(a?){3}", {"": True, "a": True, "aaa": True, "aaaa": False}),
    ]

    def test_table(self):
        for pattern, expectations in self.CASES:
            ast = parse_to_ast(pattern)
            for text, expected in expectations.items():
                assert accepts(ast, text) == expected, (pattern, text)

    def test_large_bounds_stay_cheap(self):
        # no unfolding: the term stays small even for {1000}
        ast = parse_to_ast("a{1000}")
        assert accepts(ast, "a" * 1000)
        assert not accepts(ast, "a" * 999)

    def test_bytes_and_str_inputs(self):
        ast = parse_to_ast("ab")
        assert accepts(ast, b"ab") and accepts(ast, "ab")


class TestMatchEnds:
    def test_streaming_reports(self):
        parsed = parse("ab")
        ends = match_ends(parsed.search_ast(), "abxab")
        assert ends == [2, 5]

    def test_nullable_reports_zero(self):
        assert 0 in match_ends(parse_to_ast("a*"), "aa")

    def test_counting_window(self):
        parsed = parse("a{2,3}")
        ends = match_ends(parsed.search_ast(), "aaaa")
        assert ends == [2, 3, 4]

    def test_dead_state_stops_early(self):
        matcher = DerivativeMatcher(parse_to_ast("^abc").children()[0] if False else parse_to_ast("abc"))
        for byte in b"abd":
            matcher.feed(byte)
        assert matcher.dead

    def test_reset(self):
        matcher = DerivativeMatcher(parse_to_ast("ab"))
        matcher.feed(ord("a"))
        matcher.reset()
        matcher.feed(ord("a"))
        matcher.feed(ord("b"))
        assert matcher.accepting
