"""Tests for the Section 4.2 rewrite/simplification pass."""

from repro.regex.ast import (
    EPSILON,
    Alt,
    Concat,
    Repeat,
    Star,
    Sym,
    alternation,
    concat,
    repeat,
    star,
)
from repro.regex.charclass import CharClass
from repro.regex.oracle import accepts
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify

from tests.helpers import random_strings


def sym(text):
    return Sym(CharClass.of_string(text))


class TestPaperRules:
    def test_merges_singleton_alternation(self):
        # [a]|[b] -> [ab] (the paper's example)
        assert simplify(parse_to_ast("[a]|[b]")) == sym("ab")

    def test_merges_classes_among_other_alternatives(self):
        node = simplify(parse_to_ast("[a]|xy|[b]"))
        assert isinstance(node, Alt)
        classes = [p for p in node.parts if isinstance(p, Sym)]
        assert len(classes) == 1
        assert classes[0].cls == CharClass.of_string("ab")

    def test_unfolds_upper_bound_below_two(self):
        assert simplify(parse_to_ast("a{0,1}")) == alternation(sym("a"), EPSILON)
        assert simplify(parse_to_ast("a{1}")) == sym("a")
        assert simplify(parse_to_ast("a{0,0}")) == EPSILON

    def test_keeps_real_counting(self):
        node = simplify(parse_to_ast("a{2,5}"))
        assert isinstance(node, Repeat)

    def test_lowers_unbounded(self):
        node = simplify(parse_to_ast("a{3,}"))
        # a{3,} == a{3} a*
        assert node == concat(repeat(sym("a"), 3, 3), star(sym("a")))

    def test_lowers_unbounded_from_zero(self):
        assert simplify(parse_to_ast("a{0,}")) == star(sym("a"))

    def test_lowers_unbounded_one(self):
        # a{1,} == a a*
        assert simplify(parse_to_ast("a{1,}")) == concat(sym("a"), star(sym("a")))


class TestNormalization:
    def test_idempotent(self):
        for pattern in ["a{0,1}b{3,}", "([a]|[b])*c{2,4}", "(a?){2,3}", "x|x|y"]:
            once = simplify(parse_to_ast(pattern))
            assert simplify(once) == once

    def test_no_small_repeats_survive(self):
        for pattern in ["a?", "(ab)?", "a{0,1}{0,1}", "(a{1}){1}"]:
            node = simplify(parse_to_ast(pattern))
            for sub in node.walk():
                if isinstance(sub, Repeat):
                    assert sub.hi is not None and sub.hi >= 2

    def test_no_unbounded_repeats_survive(self):
        node = simplify(parse_to_ast("a{2,}(b{3,}c){1,}"))
        for sub in node.walk():
            if isinstance(sub, Repeat):
                assert sub.hi is not None


class TestLanguagePreservation:
    """Differential check against the derivative oracle."""

    PATTERNS = [
        "a{0,1}",
        "a{2,}",
        "(ab){1,}c",
        "[a]|[b]|ab",
        "(a|b){0,3}",
        "(a?b?){2,4}",
        "a{3,}|b{0,1}",
        "((a|b)c){2,}",
    ]

    def test_simplify_preserves_language(self):
        for pattern in self.PATTERNS:
            original = parse_to_ast(pattern)
            simplified = simplify(original)
            for text in random_strings("abc", 60, 10, seed=hash(pattern) & 0xFFFF):
                assert accepts(original, text) == accepts(simplified, text), (
                    pattern,
                    text,
                )
