"""Fuzz tests: the parser must be total (parse or raise RegexError)."""

from hypothesis import given, settings, strategies as st

from repro.regex.errors import RegexError
from repro.regex.oracle import accepts
from repro.regex.parser import parse
from repro.regex.rewrite import simplify

# characters weighted toward regex metasyntax to hit parser branches
_FUZZ_ALPHABET = "ab01(){}[]|*+?.^$\\-,xdswrn{}"


@settings(max_examples=400, deadline=None)
@given(st.text(alphabet=_FUZZ_ALPHABET, max_size=24))
def test_parser_is_total(text):
    """Arbitrary input never crashes with anything but RegexError."""
    try:
        parse(text)
    except RegexError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet=_FUZZ_ALPHABET, max_size=16))
def test_accepted_patterns_round_trip(text):
    """Whatever parses must print and reparse to the same language."""
    try:
        parsed = parse(text)
    except RegexError:
        return
    ast = simplify(parsed.ast)
    printed = ast.to_pattern()
    reparsed = simplify(parse(printed).ast)
    for probe in ("", "a", "ab", "ba", "aab", "0", "a0b"):
        assert accepts(ast, probe) == accepts(reparsed, probe), (
            text,
            printed,
            probe,
        )


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=12))
def test_oracle_total_on_parsed_patterns(data):
    """The oracle must handle any byte input on any parsed pattern."""
    for pattern in (r"[^\x00]{2,4}", r"(\x00|\xff){1,3}", r".{0,5}x"):
        parsed = parse(pattern)
        accepts(simplify(parsed.membership_ast()), data)
