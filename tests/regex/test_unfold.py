"""Tests for repetition unfolding (the baseline transformation)."""

from repro.regex.ast import Repeat
from repro.regex.metrics import count_instances, position_count
from repro.regex.oracle import accepts
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify
from repro.regex.unfold import unfold_all, unfold_repeat, unfold_up_to

from tests.helpers import random_strings


class TestUnfoldRepeat:
    def test_exact_repetition(self):
        node = unfold_repeat(parse_to_ast("a"), 3, 3)
        assert node.to_pattern() == "aaa"

    def test_range_repetition_positions(self):
        node = unfold_repeat(parse_to_ast("a"), 2, 5)
        assert position_count(node) == 5
        assert count_instances(node) == 0

    def test_language(self):
        original = parse_to_ast("a{2,4}")
        unfolded = unfold_repeat(parse_to_ast("a"), 2, 4)
        for text in ["", "a", "aa", "aaa", "aaaa", "aaaaa"]:
            assert accepts(original, text) == accepts(unfolded, text)


class TestUnfoldAll:
    def test_removes_all_counting(self):
        node = unfold_all(parse_to_ast("a{3}(b{2}c){2,4}"))
        assert count_instances(node) == 0

    def test_language_preserved(self):
        for pattern in ["a{2,4}", "(ab){2}", "(a|b){1,3}c", "a{2}(b{2}){2}"]:
            original = simplify(parse_to_ast(pattern))
            unfolded = unfold_all(original)
            for text in random_strings("abc", 80, 10, seed=42):
                assert accepts(original, text) == accepts(unfolded, text), (
                    pattern,
                    text,
                )


class TestThreshold:
    def test_threshold_spares_large_bounds(self):
        node = unfold_up_to(simplify(parse_to_ast("a{3}b{100}")), 10)
        survivors = [n for n in node.walk() if isinstance(n, Repeat)]
        assert len(survivors) == 1
        assert survivors[0].hi == 100

    def test_threshold_none_unfolds_everything(self):
        node = unfold_up_to(parse_to_ast("a{3}b{100}"), None)
        assert count_instances(node) == 0

    def test_threshold_zero_keeps_bounded(self):
        node = unfold_up_to(simplify(parse_to_ast("a{3}b{100}")), 0)
        assert count_instances(node) == 2

    def test_unbounded_always_unfolds(self):
        node = unfold_up_to(parse_to_ast("a{3,}"), 0)
        for sub in node.walk():
            if isinstance(sub, Repeat):
                assert sub.hi is not None

    def test_outer_unfold_duplicates_inner_survivor(self):
        # (a{100}){3} with threshold 10: outer unfolds, inner survives
        # in each of the 3 copies
        node = unfold_up_to(simplify(parse_to_ast("(a{100}){3}")), 10)
        survivors = [n for n in node.walk() if isinstance(n, Repeat)]
        assert len(survivors) == 3
        assert all(s.hi == 100 for s in survivors)
