"""Tests for language sampling (planted-match generation)."""

import random

import pytest

from repro.regex.ast import EMPTY
from repro.regex.oracle import accepts
from repro.regex.parser import parse_to_ast
from repro.regex.sample import CannotSampleError, sample_match


class TestSampleMatch:
    PATTERNS = [
        "abc",
        "a{2,5}",
        "(ab|cd){1,3}e?",
        "[a-f]{3}[0-9]{2,4}",
        "x(y|z)*w",
        "a{0,3}b{2}",
        "(a?){4}",
    ]

    def test_samples_are_members(self):
        rng = random.Random(0)
        for pattern in self.PATTERNS:
            ast = parse_to_ast(pattern)
            for _ in range(25):
                text = sample_match(ast, rng)
                assert accepts(ast, text), (pattern, text)

    def test_deterministic_for_fixed_seed(self):
        ast = parse_to_ast("(ab|cd){2,4}")
        first = [sample_match(ast, random.Random(7)) for _ in range(5)]
        second = [sample_match(ast, random.Random(7)) for _ in range(5)]
        assert first == second

    def test_empty_language_raises(self):
        with pytest.raises(CannotSampleError):
            sample_match(EMPTY, random.Random(0))

    def test_repeat_cap_limits_length(self):
        ast = parse_to_ast("a{2,2000}")
        rng = random.Random(1)
        for _ in range(10):
            assert len(sample_match(ast, rng, repeat_cap=4)) <= 6

    def test_full_range_without_cap(self):
        ast = parse_to_ast("a{2,9}")
        rng = random.Random(2)
        lengths = {len(sample_match(ast, rng, repeat_cap=None)) for _ in range(200)}
        assert lengths == set(range(2, 10))
