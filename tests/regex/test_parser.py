"""Unit tests for the POSIX/PCRE-style parser."""

import pytest

from repro.regex import charclass as cc
from repro.regex.ast import Alt, Concat, Repeat, Star, Sym
from repro.regex.errors import RegexSyntaxError, UnsupportedFeatureError
from repro.regex.parser import parse, parse_to_ast


class TestBasics:
    def test_literal(self):
        ast = parse_to_ast("ab")
        assert isinstance(ast, Concat)
        assert ast.to_pattern() == "ab"

    def test_empty_pattern(self):
        assert parse("").ast.nullable()

    def test_dot(self):
        ast = parse_to_ast(".")
        assert isinstance(ast, Sym)
        assert ast.cls == cc.DOT_NO_NEWLINE

    def test_alternation(self):
        ast = parse_to_ast("ab|cd|ef")
        assert isinstance(ast, Alt)
        assert len(ast.parts) == 3

    def test_group(self):
        assert parse_to_ast("(ab)c") == parse_to_ast("abc")

    def test_non_capturing_group(self):
        assert parse_to_ast("(?:ab)c") == parse_to_ast("abc")

    def test_nested_groups(self):
        ast = parse_to_ast("((a|b)c)+")
        assert "a|b" in ast.to_pattern()

    def test_unbalanced_group(self):
        with pytest.raises(RegexSyntaxError):
            parse("(ab")
        with pytest.raises(RegexSyntaxError):
            parse("ab)")


class TestQuantifiers:
    def test_star(self):
        assert isinstance(parse_to_ast("a*"), Star)

    def test_plus_desugars(self):
        ast = parse_to_ast("a+")
        assert isinstance(ast, Concat)
        assert isinstance(ast.parts[1], Star)

    def test_question_is_repeat01(self):
        ast = parse_to_ast("a?")
        assert isinstance(ast, Repeat)
        assert (ast.lo, ast.hi) == (0, 1)

    def test_exact_bound(self):
        ast = parse_to_ast("a{5}")
        assert isinstance(ast, Repeat)
        assert (ast.lo, ast.hi) == (5, 5)

    def test_range_bound(self):
        ast = parse_to_ast("a{2,7}")
        assert (ast.lo, ast.hi) == (2, 7)

    def test_open_bound(self):
        ast = parse_to_ast("a{3,}")
        assert (ast.lo, ast.hi) == (3, None)

    def test_reversed_bound_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{5,2}")

    def test_literal_brace(self):
        # '{' not followed by digits is a literal, as in PCRE
        ast = parse_to_ast("a{b")
        assert ast.to_pattern() == "a\\{b"

    def test_lazy_modifier_ignored(self):
        assert parse_to_ast("a*?") == parse_to_ast("a*")
        assert parse_to_ast("a{2,5}?") == parse_to_ast("a{2,5}")
        assert parse_to_ast("a+?") == parse_to_ast("a+")

    def test_quantifier_without_atom(self):
        with pytest.raises(RegexSyntaxError):
            parse("*a")
        with pytest.raises(RegexSyntaxError):
            parse("{3}")

    def test_max_bound_enforced(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{1,99999}", max_bound=1024)
        parse("a{1,1024}", max_bound=1024)  # at the limit is fine

    def test_quantified_group(self):
        ast = parse_to_ast("(ab){2,3}")
        assert isinstance(ast, Repeat)
        assert isinstance(ast.inner, Concat)


class TestClasses:
    def test_simple_class(self):
        ast = parse_to_ast("[abc]")
        assert ast.cls == cc.CharClass.of_string("abc")

    def test_range_class(self):
        assert parse_to_ast("[a-f]").cls == cc.CharClass.of_range(ord("a"), ord("f"))

    def test_negated_class(self):
        ast = parse_to_ast("[^ab]")
        assert ord("a") not in ast.cls
        assert ord("c") in ast.cls

    def test_literal_dash(self):
        # trailing dash is literal
        assert ord("-") in parse_to_ast("[a-]").cls

    def test_leading_bracket_member(self):
        assert ord("]") in parse_to_ast("[]a]").cls

    def test_class_with_escapes(self):
        ast = parse_to_ast(r"[\r\n\t]")
        assert set(ast.cls) == {0x0D, 0x0A, 0x09}

    def test_class_with_named_escape(self):
        ast = parse_to_ast(r"[\d_]")
        assert ord("5") in ast.cls
        assert ord("_") in ast.cls

    def test_posix_class(self):
        ast = parse_to_ast("[[:digit:]x]")
        assert ord("7") in ast.cls
        assert ord("x") in ast.cls

    def test_unknown_posix_class(self):
        with pytest.raises(RegexSyntaxError):
            parse("[[:bogus:]]")

    def test_unterminated_class(self):
        with pytest.raises(RegexSyntaxError):
            parse("[abc")

    def test_reversed_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[z-a]")


class TestEscapes:
    def test_named_classes(self):
        assert parse_to_ast(r"\d").cls == cc.DIGITS
        assert parse_to_ast(r"\D").cls == cc.DIGITS.complement()
        assert parse_to_ast(r"\w").cls == cc.WORD
        assert parse_to_ast(r"\s").cls == cc.SPACE

    def test_control_escapes(self):
        assert list(parse_to_ast(r"\n").cls) == [0x0A]
        assert list(parse_to_ast(r"\t").cls) == [0x09]
        assert list(parse_to_ast(r"\0").cls) == [0x00]

    def test_hex_escape(self):
        assert list(parse_to_ast(r"\x2f").cls) == [0x2F]
        assert list(parse_to_ast(r"\x{ff}").cls) == [0xFF]

    def test_hex_escape_out_of_range(self):
        with pytest.raises(RegexSyntaxError):
            parse(r"\x{100}")

    def test_metacharacter_escape(self):
        assert list(parse_to_ast(r"\.").cls) == [ord(".")]
        assert list(parse_to_ast(r"\\").cls) == [ord("\\")]

    def test_dangling_backslash(self):
        with pytest.raises(RegexSyntaxError):
            parse("ab\\")


class TestUnsupportedFeatures:
    """These populate the supported/total gap of Table 1."""

    def test_backreference(self):
        with pytest.raises(UnsupportedFeatureError) as err:
            parse(r"(a+)b\1")
        assert "backreference" in str(err.value)

    def test_lookahead(self):
        with pytest.raises(UnsupportedFeatureError):
            parse(r"a(?=b)")
        with pytest.raises(UnsupportedFeatureError):
            parse(r"a(?!b)")

    def test_lookbehind(self):
        with pytest.raises(UnsupportedFeatureError):
            parse(r"(?<=a)b")
        with pytest.raises(UnsupportedFeatureError):
            parse(r"(?<!a)b")

    def test_word_boundary(self):
        with pytest.raises(UnsupportedFeatureError):
            parse(r"\bword\b")

    def test_named_group(self):
        with pytest.raises(UnsupportedFeatureError):
            parse(r"(?P<name>a)")

    def test_mid_pattern_anchor(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("a^b")
        with pytest.raises(UnsupportedFeatureError):
            parse("a$b")


class TestAnchorsAndFlags:
    def test_unanchored(self):
        parsed = parse("abc")
        assert not parsed.anchored_start
        assert not parsed.anchored_end

    def test_start_anchor(self):
        assert parse("^abc").anchored_start

    def test_end_anchor(self):
        assert parse("abc$").anchored_end

    def test_both_anchors(self):
        parsed = parse("^abc$")
        assert parsed.anchored_start and parsed.anchored_end

    def test_search_ast_adds_sigma_star(self):
        parsed = parse("abc")
        assert parsed.search_ast().to_pattern().startswith("[\\x00-\\xff]*")

    def test_anchored_search_ast_unchanged(self):
        parsed = parse("^abc")
        assert parsed.search_ast() == parsed.ast

    def test_case_insensitive_flag(self):
        ast = parse_to_ast("(?i)ab")
        first = ast.parts[0]
        assert ord("A") in first.cls
        assert ord("a") in first.cls

    def test_case_insensitive_classes(self):
        ast = parse_to_ast("(?i)[a-c]")
        assert ord("B") in ast.cls

    def test_scoped_flag_group(self):
        ast = parse_to_ast("(?i:a)b")
        assert ord("A") in ast.parts[0].cls
        assert ord("B") not in ast.parts[1].cls
