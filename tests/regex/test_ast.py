"""Unit tests for the regex AST and smart constructors."""

import pytest

from repro.regex.ast import (
    EMPTY,
    EPSILON,
    Alt,
    Concat,
    Repeat,
    Star,
    Sym,
    alternation,
    collect_repeats,
    concat,
    literal,
    repeat,
    replace_at_path,
    star,
)
from repro.regex.charclass import CharClass


def a():
    return Sym(CharClass.of_char("a"))


def b():
    return Sym(CharClass.of_char("b"))


class TestSmartConstructors:
    def test_concat_identity(self):
        assert concat(a(), EPSILON) == a()
        assert concat(EPSILON, EPSILON) == EPSILON

    def test_concat_zero(self):
        assert concat(a(), EMPTY) == EMPTY

    def test_concat_flattens(self):
        nested = concat(concat(a(), b()), a())
        assert isinstance(nested, Concat)
        assert len(nested.parts) == 3

    def test_alternation_dedupes(self):
        assert alternation(a(), a()) == a()

    def test_alternation_drops_empty(self):
        assert alternation(a(), EMPTY) == a()
        assert alternation(EMPTY, EMPTY) == EMPTY

    def test_alternation_flattens(self):
        nested = alternation(alternation(a(), b()), literal("c"))
        assert isinstance(nested, Alt)
        assert len(nested.parts) == 3

    def test_star_collapses(self):
        assert star(star(a())) == star(a())
        assert star(EPSILON) == EPSILON
        assert star(EMPTY) == EPSILON

    def test_repeat_degenerate(self):
        assert repeat(a(), 0, 0) == EPSILON
        assert repeat(a(), 1, 1) == a()
        assert repeat(a(), 0, None) == star(a())
        assert repeat(EPSILON, 3, 7) == EPSILON
        assert repeat(EMPTY, 0, 5) == EPSILON
        assert repeat(EMPTY, 2, 5) == EMPTY

    def test_repeat_keeps_optional(self):
        node = repeat(a(), 0, 1)
        assert isinstance(node, Repeat)

    def test_repeat_invalid_bounds(self):
        with pytest.raises(ValueError):
            Repeat(a(), 5, 3)
        with pytest.raises(ValueError):
            Repeat(a(), -1, 3)

    def test_literal(self):
        node = literal("ab")
        assert isinstance(node, Concat)
        assert node.to_pattern() == "ab"


class TestStructure:
    def test_nullable(self):
        assert EPSILON.nullable()
        assert not a().nullable()
        assert star(a()).nullable()
        assert repeat(a(), 0, 3).nullable()
        assert not repeat(a(), 2, 3).nullable()
        assert repeat(star(a()), 2, 3).nullable()
        assert concat(star(a()), star(b())).nullable()
        assert not concat(star(a()), b()).nullable()
        assert alternation(a(), EPSILON).nullable()

    def test_size(self):
        node = concat(a(), repeat(b(), 2, 3))
        assert node.size() == 4  # concat, a, repeat, b

    def test_walk_preorder(self):
        node = concat(a(), star(b()))
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Concat", "Sym", "Star", "Sym"]

    def test_to_pattern_round_trip(self):
        from repro.regex.parser import parse_to_ast

        cases = [
            concat(a(), b()),
            alternation(a(), concat(b(), b())),
            star(alternation(a(), b())),
            repeat(a(), 2, 5),
            repeat(concat(a(), b()), 3, 3),
            concat(a(), repeat(alternation(a(), b()), 1, 4), b()),
        ]
        for node in cases:
            assert parse_to_ast(node.to_pattern()) == node

    def test_repeat_bounds_pattern(self):
        assert repeat(a(), 2, 2).bounds_pattern() == "{2}"
        assert repeat(a(), 2, 5).bounds_pattern() == "{2,5}"
        assert Repeat(a(), 2, None).bounds_pattern() == "{2,}"


class TestRepeatInstances:
    def test_collect_order_is_preorder(self):
        node = concat(
            repeat(a(), 2, 3),
            repeat(concat(b(), repeat(a(), 4, 5)), 6, 7),
        )
        instances = collect_repeats(node)
        assert [i.index for i in instances] == [0, 1, 2]
        assert [(i.lo, i.hi) for i in instances] == [(2, 3), (6, 7), (4, 5)]

    def test_paths_address_nodes(self):
        node = concat(a(), repeat(b(), 2, 4))
        (inst,) = collect_repeats(node)
        assert inst.path == (1,)

    def test_replace_at_path(self):
        node = concat(a(), repeat(b(), 2, 4))
        (inst,) = collect_repeats(node)
        replaced = replace_at_path(node, inst.path, star(b()))
        assert replaced == concat(a(), star(b()))

    def test_describe(self):
        (inst,) = collect_repeats(repeat(a(), 2, 4))
        assert inst.describe() == "#0:a{2,4}"
