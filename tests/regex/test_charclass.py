"""Unit tests for byte-alphabet character classes."""

import pytest

from repro.regex import charclass as cc
from repro.regex.charclass import ALPHABET_SIZE, CharClass


class TestConstruction:
    def test_of_byte(self):
        klass = CharClass.of_byte(ord("a"))
        assert ord("a") in klass
        assert ord("b") not in klass
        assert klass.count() == 1

    def test_of_byte_out_of_range(self):
        with pytest.raises(ValueError):
            CharClass.of_byte(256)
        with pytest.raises(ValueError):
            CharClass.of_byte(-1)

    def test_of_char(self):
        assert CharClass.of_char("x") == CharClass.of_byte(ord("x"))

    def test_of_char_multibyte_rejected(self):
        with pytest.raises(ValueError):
            CharClass.of_char("ab")

    def test_of_char_non_latin1_rejected(self):
        with pytest.raises(ValueError):
            CharClass.of_char("☃")

    def test_of_bytes(self):
        klass = CharClass.of_bytes([1, 3, 5])
        assert list(klass) == [1, 3, 5]

    def test_of_string(self):
        assert list(CharClass.of_string("ba")) == [ord("a"), ord("b")]

    def test_of_range(self):
        klass = CharClass.of_range(ord("a"), ord("c"))
        assert list(klass) == [ord("a"), ord("b"), ord("c")]

    def test_of_range_reversed_rejected(self):
        with pytest.raises(ValueError):
            CharClass.of_range(5, 3)

    def test_sigma_contains_everything(self):
        assert cc.SIGMA.count() == ALPHABET_SIZE
        assert cc.SIGMA.is_sigma()

    def test_empty(self):
        assert cc.EMPTY.is_empty()
        assert cc.EMPTY.count() == 0

    def test_dot_excludes_newline(self):
        assert ord("\n") not in cc.DOT_NO_NEWLINE
        assert cc.DOT_NO_NEWLINE.count() == ALPHABET_SIZE - 1


class TestAlgebra:
    def test_union(self):
        a = CharClass.of_char("a")
        b = CharClass.of_char("b")
        assert (a | b).count() == 2

    def test_intersection(self):
        ab = CharClass.of_string("ab")
        bc = CharClass.of_string("bc")
        assert list(ab & bc) == [ord("b")]

    def test_complement_involution(self):
        klass = CharClass.of_string("xyz")
        assert ~~klass == klass

    def test_complement_partitions_sigma(self):
        klass = CharClass.of_string("qrs")
        assert (klass | ~klass) == cc.SIGMA
        assert (klass & ~klass).is_empty()

    def test_difference(self):
        abc = CharClass.of_string("abc")
        b = CharClass.of_char("b")
        assert list(abc - b) == [ord("a"), ord("c")]

    def test_overlaps(self):
        assert CharClass.of_string("ab").overlaps(CharClass.of_string("bc"))
        assert not CharClass.of_char("a").overlaps(CharClass.of_char("b"))

    def test_is_subset(self):
        assert CharClass.of_char("a").is_subset(CharClass.of_string("ab"))
        assert not CharClass.of_string("ab").is_subset(CharClass.of_char("a"))

    def test_immutability(self):
        klass = CharClass.of_char("a")
        with pytest.raises(AttributeError):
            klass.mask = 0


class TestRangesAndPrinting:
    def test_ranges_merges_adjacent(self):
        klass = CharClass.of_bytes([1, 2, 3, 7, 9, 10])
        assert klass.ranges() == [(1, 3), (7, 7), (9, 10)]

    def test_to_pattern_singleton(self):
        assert CharClass.of_char("a").to_pattern() == "a"

    def test_to_pattern_escapes_metacharacters(self):
        assert CharClass.of_char(".").to_pattern() == "\\."
        assert CharClass.of_char("*").to_pattern() == "\\*"

    def test_to_pattern_dot(self):
        assert cc.DOT_NO_NEWLINE.to_pattern() == "."

    def test_to_pattern_range(self):
        assert CharClass.of_range(ord("a"), ord("f")).to_pattern() == "[a-f]"

    def test_to_pattern_negated_for_large_classes(self):
        klass = ~CharClass.of_string("ab")
        assert klass.to_pattern() == "[^ab]"

    def test_round_trip_through_parser(self):
        from repro.regex.ast import Sym
        from repro.regex.parser import parse_to_ast

        for source in [
            CharClass.of_string("ab"),
            CharClass.of_range(0x00, 0x1F),
            ~CharClass.of_string("\r\n"),
            CharClass.of_bytes([0, 255]),
            cc.DIGITS,
            cc.SIGMA,
        ]:
            reparsed = parse_to_ast(source.to_pattern())
            assert isinstance(reparsed, Sym)
            assert reparsed.cls == source

    def test_sample_prefers_printable(self):
        klass = CharClass.of_bytes([0x01, ord("z")])
        assert klass.sample() == ord("z")

    def test_sample_falls_back_to_unprintable(self):
        assert CharClass.of_byte(0x01).sample() == 0x01

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            cc.EMPTY.sample()


class TestHashingEquality:
    def test_equal_masks_equal(self):
        assert CharClass.of_string("ab") == CharClass.of_bytes([ord("a"), ord("b")])

    def test_usable_as_dict_key(self):
        d = {CharClass.of_char("a"): 1}
        assert d[CharClass.of_char("a")] == 1

    def test_named_classes(self):
        assert ord("5") in cc.DIGITS
        assert ord("_") in cc.WORD
        assert ord(" ") in cc.SPACE
        assert ord("a") not in cc.DIGITS
