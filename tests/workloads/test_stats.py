"""Tests for the census (Table 1 computation)."""

from repro.workloads.stats import census
from repro.workloads.synth import snort_like, protomata_like


class TestCensus:
    def test_columns_are_nested(self):
        row = census(snort_like(total=80))
        assert row.total == 80
        assert row.supported <= row.total
        assert row.counting <= row.supported
        assert row.ambiguous <= row.counting

    def test_records_populated(self):
        row = census(snort_like(total=40))
        assert len(row.records) == 40
        supported = [r for r in row.records if r.supported]
        assert len(supported) == row.supported
        counting = [r for r in supported if r.has_counting]
        assert len(counting) == row.counting
        for record in counting:
            assert record.mu >= 2
            assert record.elapsed_s >= 0

    def test_unsupported_reasons_recorded(self):
        row = census(snort_like(total=120))
        skipped = [r for r in row.records if not r.supported]
        assert skipped
        assert all(r.skip_reason for r in skipped)

    def test_census_matches_intended_ambiguity(self):
        suite = protomata_like(total=40)
        row = census(suite)
        intended = suite.intended_counts()["count-ambiguous"]
        assert row.ambiguous == intended
