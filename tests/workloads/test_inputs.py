"""Tests for the input-stream generators."""

from repro.compiler.pipeline import compile_pattern
from repro.hardware.simulator import NetworkSimulator
from repro.workloads.inputs import (
    ascii_text,
    binary_stream,
    mail_stream,
    network_stream,
    plant_matches,
    protein_stream,
    random_bytes,
    stream_for_style,
)


class TestStreams:
    def test_lengths(self):
        for fn in (random_bytes, ascii_text, protein_stream, network_stream,
                   mail_stream, binary_stream):
            assert len(fn(500, seed=1)) == 500

    def test_determinism(self):
        assert network_stream(300, seed=9) == network_stream(300, seed=9)
        assert network_stream(300, seed=9) != network_stream(300, seed=10)

    def test_protein_alphabet(self):
        data = protein_stream(1000, seed=2)
        assert set(data) <= set(b"ACDEFGHIKLMNPQRSTVWY")

    def test_network_has_http_structure(self):
        data = network_stream(2000, seed=3)
        assert b"HTTP/1.1" in data
        assert b"\r\n" in data

    def test_style_registry(self):
        for style in ("network", "protein", "mail", "binary", "ascii", "random"):
            assert len(stream_for_style(style, 100, seed=0)) == 100


class TestPlanting:
    def test_planted_matches_fire_reports(self):
        pattern = r"needle[0-9]{3,8}x"
        background = ascii_text(800, seed=4)
        data = plant_matches(background, [pattern], seed=5, density=0.05)
        compiled = compile_pattern(pattern)
        sim = NetworkSimulator(compiled.network)
        assert sim.match_ends(data)

    def test_density_zero_is_identity_length(self):
        background = ascii_text(400, seed=6)
        data = plant_matches(background, ["ab"], seed=7, density=0.0)
        assert data == background

    def test_unparseable_patterns_skipped(self):
        background = ascii_text(200, seed=8)
        data = plant_matches(background, ["((", r"(a)\1"], seed=9)
        assert data == background

    def test_deterministic(self):
        background = ascii_text(300, seed=1)
        a = plant_matches(background, ["xy{2,4}z"], seed=2)
        b = plant_matches(background, ["xy{2,4}z"], seed=2)
        assert a == b
