"""Tests for the synthetic benchmark generators."""

import pytest

from repro.analysis.hybrid import analyze_pattern
from repro.regex.errors import RegexError, UnsupportedFeatureError
from repro.regex.parser import parse
from repro.workloads.synth import (
    APPLICATION_SUITES,
    PAPER_TABLE1,
    all_suites,
    clamav_like,
    protomata_like,
    snort_like,
    spamassassin_like,
    suite_by_name,
    suricata_like,
)


class TestDeterminism:
    def test_same_seed_same_rules(self):
        a = snort_like(total=50, seed=1)
        b = snort_like(total=50, seed=1)
        assert [r.pattern for r in a.rules] == [r.pattern for r in b.rules]

    def test_different_seed_different_rules(self):
        a = snort_like(total=50, seed=1)
        b = snort_like(total=50, seed=2)
        assert [r.pattern for r in a.rules] != [r.pattern for r in b.rules]

    def test_rule_ids_unique(self):
        for suite in all_suites(scale=0.1):
            ids = [r.rule_id for r in suite.rules]
            assert len(ids) == len(set(ids))


class TestCalibration:
    """Generated category fractions track Table 1 (within tolerance)."""

    @pytest.mark.parametrize("name", list(PAPER_TABLE1))
    def test_category_fractions(self, name):
        suite = suite_by_name(name, total=300)
        paper = PAPER_TABLE1[name]
        counts = suite.intended_counts()
        total = len(suite.rules)
        supported = total - counts["unsupported"]
        counting = counts["count-unambiguous"] + counts["count-ambiguous"]
        assert supported / total == pytest.approx(
            paper["supported"] / paper["total"], abs=0.03
        )
        assert counting / supported == pytest.approx(
            paper["counting"] / paper["supported"], abs=0.03
        )
        if counting:
            assert counts["count-ambiguous"] / counting == pytest.approx(
                paper["ambiguous"] / paper["counting"], abs=0.05
            )


class TestIntentMatchesAnalysis:
    """Generator categories must survive the real pipeline."""

    def test_unsupported_rules_rejected_by_parser(self):
        suite = snort_like(total=200)
        for rule in suite.rules:
            if rule.category == "unsupported":
                with pytest.raises(UnsupportedFeatureError):
                    parse(rule.pattern)

    def test_supported_rules_parse(self):
        for suite in all_suites(scale=0.1):
            for rule in suite.rules:
                if rule.category != "unsupported":
                    parse(rule.pattern)  # must not raise

    @pytest.mark.parametrize(
        "factory", [snort_like, suricata_like, spamassassin_like, clamav_like]
    )
    def test_unambiguous_intent_verified(self, factory):
        suite = factory(total=120)
        checked = 0
        for rule in suite.rules:
            if rule.category != "count-unambiguous" or checked >= 8:
                continue
            result = analyze_pattern(rule.pattern, max_pairs=500_000)
            assert result.has_counting, rule.pattern
            assert not result.ambiguous, rule.pattern
            checked += 1
        assert checked > 0

    def test_protomata_ambiguous_intent_verified(self):
        suite = protomata_like(total=60)
        checked = 0
        for rule in suite.rules:
            if rule.category != "count-ambiguous" or checked >= 10:
                continue
            result = analyze_pattern(rule.pattern, max_pairs=500_000)
            assert result.ambiguous, rule.pattern
            checked += 1
        assert checked > 0


class TestShapes:
    def test_application_suite_registry(self):
        assert set(APPLICATION_SUITES) == {
            "Protomata",
            "SpamAssassin",
            "Snort",
            "Suricata",
        }

    def test_network_suites_have_large_bounds(self):
        """Snort/Suricata must include the large bounds that make
        Figures 9/10 interesting."""
        from repro.regex.metrics import mu
        from repro.regex.rewrite import simplify

        suite = snort_like(total=300)
        bounds = []
        for rule in suite.rules:
            try:
                bounds.append(mu(simplify(parse(rule.pattern).ast)))
            except RegexError:
                continue
        assert max(bounds) > 100

    def test_protomata_bounds_small(self):
        from repro.regex.metrics import mu
        from repro.regex.rewrite import simplify

        suite = protomata_like(total=100)
        for rule in suite.rules:
            bound = mu(simplify(parse(rule.pattern).ast))
            assert bound <= 30
