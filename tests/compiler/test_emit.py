"""Tests for network emission and the module-selection policy."""

import pytest

from repro.compiler.emit import Decision, EmitError, emit_network, plan_decisions
from repro.mnrl.nodes import BitVectorNode, CounterNode, STE, StartType
from repro.regex.parser import parse, parse_to_ast
from repro.regex.rewrite import simplify


def decisions_for(pattern: str, ambiguous: dict[int, bool], threshold: float = 0):
    ast = simplify(parse_to_ast(pattern))
    return ast, plan_decisions(ast, ambiguous, threshold)


class TestPolicy:
    def test_unambiguous_gets_counter(self):
        _, d = decisions_for("a(bc){2,9}d", {0: False})
        assert d[0] is Decision.COUNTER

    def test_ambiguous_single_class_gets_bitvector(self):
        _, d = decisions_for("a[bc]{2,9}d", {0: True})
        assert d[0] is Decision.BITVECTOR

    def test_ambiguous_general_body_unfolds(self):
        _, d = decisions_for("a(bc){2,9}d", {0: True})
        assert d[0] is Decision.UNFOLD

    def test_threshold_forces_unfold(self):
        _, d = decisions_for("a(bc){2,9}d", {0: False}, threshold=9)
        assert d[0] is Decision.UNFOLD

    def test_threshold_spares_larger_bounds(self):
        _, d = decisions_for("a(bc){2,9}d", {0: False}, threshold=8)
        assert d[0] is Decision.COUNTER

    def test_unfold_all(self):
        _, d = decisions_for("a[bc]{2,9}d", {0: True}, threshold=float("inf"))
        assert d[0] is Decision.UNFOLD

    def test_nullable_body_always_unfolds(self):
        _, d = decisions_for("(a?b?){2,9}", {0: False})
        assert d[0] is Decision.UNFOLD

    def test_missing_verdict_treated_ambiguous(self):
        _, d = decisions_for("a(bc){2,9}d", {})
        assert d[0] is Decision.UNFOLD  # general ambiguous body


class TestCounterWiring:
    """The counter module must be wired per Figure 6."""

    def network(self):
        ast = simplify(parse_to_ast("a(bc){2,4}d"))
        return emit_network(ast, {0: Decision.COUNTER}).network

    def test_node_inventory(self):
        net = self.network()
        assert net.ste_count() == 4  # a b c d
        assert net.counter_count() == 1

    def test_ports(self):
        net = self.network()
        (ctr,) = net.counters()
        incoming = {(c.source, c.target_port) for c in net.incoming(ctr.id)}
        by_pred = {
            n.symbol_set.to_pattern(): n.id for n in net.stes()
        }
        # pre <- a, fst <- b, lst <- c
        assert (by_pred["a"], "pre") in incoming
        assert (by_pred["b"], "fst") in incoming
        assert (by_pred["c"], "lst") in incoming
        outgoing = {(c.source_port, c.target) for c in net.outgoing(ctr.id)}
        # en_fst -> b, en_out -> d
        assert ("en_fst", by_pred["b"]) in outgoing
        assert ("en_out", by_pred["d"]) in outgoing

    def test_bounds_programmed(self):
        (ctr,) = self.network().counters()
        assert (ctr.lo, ctr.hi) == (2, 4)

    def test_counter_reports_when_final(self):
        ast = simplify(parse_to_ast("a(bc){2,4}"))
        emitted = emit_network(ast, {0: Decision.COUNTER}, report_id="r")
        (ctr,) = emitted.network.counters()
        assert ctr.report and ctr.report_id == "r"


class TestBitVectorWiring:
    """The bit-vector module must be wired per Figure 7."""

    def network(self):
        ast = simplify(parse_to_ast("a[ab]{2,4}b"))
        return emit_network(ast, {0: Decision.BITVECTOR}).network

    def test_node_inventory(self):
        net = self.network()
        assert net.ste_count() == 3  # a, [ab] body, b
        assert net.bit_vector_count() == 1

    def test_ports(self):
        net = self.network()
        (bv,) = net.bit_vectors()
        incoming = {(c.source, c.target_port) for c in net.incoming(bv.id)}
        body = next(
            n for n in net.stes() if n.symbol_set.to_pattern() == "[ab]"
        )
        assert (body.id, "body") in incoming
        assert any(port == "pre" for _, port in incoming)
        outgoing = {(c.source_port, c.target) for c in net.outgoing(bv.id)}
        assert ("en_body", body.id) in outgoing

    def test_rejects_multi_class_body(self):
        ast = simplify(parse_to_ast("a(bc){2,4}d"))
        with pytest.raises(EmitError):
            emit_network(ast, {0: Decision.BITVECTOR})


class TestUnfoldedEmission:
    def test_ste_chain_size(self):
        ast = simplify(parse_to_ast("a{3,7}"))
        net = emit_network(ast, {0: Decision.UNFOLD}).network
        assert net.ste_count() == 7
        assert net.counter_count() == 0

    def test_nested_duplication(self):
        # (a{5}b){3} unfolding the outer duplicates the inner counter
        ast = simplify(parse_to_ast("(a{5}b){3}"))
        net = emit_network(
            ast, {0: Decision.UNFOLD, 1: Decision.COUNTER}
        ).network
        assert net.counter_count() == 3
        assert net.ste_count() == 3 * (1 + 1)  # 3 copies of (a-body + b)

    def test_matches_language(self):
        from repro.hardware.simulator import NetworkSimulator
        from repro.regex.oracle import match_ends

        parsed = parse("a{2,4}b")
        ast = simplify(parsed.ast)
        emitted = emit_network(ast, {0: Decision.UNFOLD})
        sim = NetworkSimulator(emitted.network)
        search = simplify(parsed.search_ast())
        data = b"xaaabaab"
        want = [e for e in match_ends(search, data) if e >= 1]
        assert sim.match_ends(data) == want


class TestStartsAndReports:
    def test_unanchored_all_input(self):
        ast = simplify(parse_to_ast("ab"))
        net = emit_network(ast, {}, anchored_start=False).network
        starts = [n for n in net.stes() if n.start is StartType.ALL_INPUT]
        assert len(starts) == 1
        assert starts[0].symbol_set.to_pattern() == "a"

    def test_anchored_start_of_data(self):
        ast = simplify(parse_to_ast("ab"))
        net = emit_network(ast, {}, anchored_start=True).network
        starts = [n for n in net.stes() if n.start is StartType.START_OF_DATA]
        assert len(starts) == 1

    def test_leading_repeat_starts_module(self):
        ast = simplify(parse_to_ast("[ab]{2,5}c"))
        emitted = emit_network(
            ast, {0: Decision.BITVECTOR}, anchored_start=False
        )
        (bv,) = emitted.network.bit_vectors()
        assert bv.start is StartType.ALL_INPUT

    def test_alternation_multi_report(self):
        ast = simplify(parse_to_ast("ab|cd"))
        net = emit_network(ast, {}, report_id="r").network
        reporters = net.reporting_nodes()
        assert len(reporters) == 2
        assert all(n.report_id == "r" for n in reporters)

    def test_matches_empty_flag(self):
        ast = simplify(parse_to_ast("a*"))
        assert emit_network(ast, {}).matches_empty
        ast2 = simplify(parse_to_ast("a+"))
        assert not emit_network(ast2, {}).matches_empty
