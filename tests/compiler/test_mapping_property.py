"""Property tests for placement: capacities and co-location always hold."""

from hypothesis import given, settings, strategies as st

from repro.compiler.mapping import map_network
from repro.compiler.pipeline import compile_ruleset
from repro.mnrl.nodes import STE


def _rule(ix: int, kind: str, bound: int, literal_len: int) -> tuple[str, str]:
    literal = "".join(chr(ord("a") + (ix + k) % 26) for k in range(literal_len))
    if kind == "counter":
        return (f"r{ix}", rf"[^z]z{{{2},{bound}}}{literal}")
    if kind == "bitvector":
        return (f"r{ix}", rf"{literal}.{{{2},{bound}}}")
    return (f"r{ix}", literal)


rule_specs = st.lists(
    st.tuples(
        st.sampled_from(["counter", "bitvector", "plain"]),
        st.integers(min_value=3, max_value=900),
        st.integers(min_value=1, max_value=30),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=50, deadline=None)
@given(rule_specs)
def test_capacities_and_colocation(specs):
    rules = [_rule(i, kind, bound, length) for i, (kind, bound, length) in enumerate(specs)]
    rs = compile_ruleset(rules)
    mapping = map_network(rs.network)
    geometry = mapping.bank.geometry

    # every node is placed exactly once
    assert set(mapping.placement) == set(rs.network.nodes)

    # physical capacities hold in every PE
    for pe in mapping.bank.pes:
        assert len(pe.stes) <= geometry.stes_per_pe
        assert len(pe.counters) <= geometry.counters_per_pe
        assert pe.bv_bits_used <= geometry.bit_vector_bits_per_pe

    # modules share a PE with every STE wired to their ports (unless
    # the mapper recorded an explicit split violation)
    split = {v.node_id for v in mapping.violations if "split" in v.detail}
    for conn in rs.network.connections:
        dst = rs.network.nodes[conn.target]
        src = rs.network.nodes[conn.source]
        if isinstance(dst, STE) or not isinstance(src, STE):
            continue
        if conn.target in split:
            continue
        assert mapping.pe_of(conn.source) == mapping.pe_of(conn.target)


@settings(max_examples=30, deadline=None)
@given(rule_specs)
def test_occupancy_statistics_consistent(specs):
    rules = [_rule(i, kind, bound, length) for i, (kind, bound, length) in enumerate(specs)]
    rs = compile_ruleset(rules)
    mapping = map_network(rs.network)
    bank = mapping.bank
    assert bank.ste_count == rs.network.ste_count()
    assert bank.counter_count == rs.network.counter_count()
    assert bank.bv_bits_used == rs.network.bit_vector_bits()
    assert bank.cam_arrays_used >= (rs.network.ste_count() + 511) // 512
    assert bank.bv_waste_bits >= 0
