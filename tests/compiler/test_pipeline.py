"""Tests for the end-to-end compile pipeline."""

import math

from repro.compiler.emit import Decision
from repro.compiler.pipeline import compile_pattern, compile_ruleset


class TestCompilePattern:
    def test_counter_selected_for_guarded_run(self):
        compiled = compile_pattern(r"[^a]a{2,50}")
        assert compiled.decisions[0] is Decision.COUNTER
        assert compiled.counter_count == 1

    def test_bitvector_selected_for_wildcard_run(self):
        compiled = compile_pattern(r"x.{2,50}y")
        assert compiled.decisions[0] is Decision.BITVECTOR
        assert compiled.bit_vector_count == 1

    def test_threshold_unfolds_small(self):
        compiled = compile_pattern(r"[^a]a{2,8}", unfold_threshold=10)
        assert compiled.decisions[0] is Decision.UNFOLD
        assert compiled.ste_count == 1 + 8  # [^a] guard + 8-deep a-chain

    def test_unfold_all_baseline(self):
        compiled = compile_pattern(r"x.{2,50}y", unfold_threshold=float("inf"))
        assert compiled.node_count == 2 + 50

    def test_anchoring_changes_analysis(self):
        # unanchored a{3} is ambiguous (bit vector); anchored is not
        assert compile_pattern("a{3}").decisions[0] is Decision.BITVECTOR
        assert compile_pattern("^a{3}").decisions[0] is Decision.COUNTER

    def test_decision_counts(self):
        compiled = compile_pattern(r"[^a]a{2,50}b.{3,60}c")
        counts = compiled.decision_counts()
        assert counts[Decision.COUNTER] == 1
        assert counts[Decision.BITVECTOR] == 1

    def test_report_id_defaults_to_source(self):
        compiled = compile_pattern("ab")
        assert compiled.report_id == "ab"

    def test_matches_empty(self):
        assert compile_pattern("a*").matches_empty
        assert not compile_pattern("ab").matches_empty


class TestCompileRuleset:
    RULES = [
        ("r1", r"[^a]a{2,40}"),
        ("r2", r"foo.{2,30}bar"),
        ("r3", r"(ab)+c"),
        ("bad1", r"(a)\1"),
        ("bad2", r"x(?=y)"),
    ]

    def test_skips_unsupported(self):
        rs = compile_ruleset(self.RULES)
        assert len(rs.patterns) == 3
        assert {rid for rid, _ in rs.skipped} == {"bad1", "bad2"}
        assert all("unsupported" in reason for _, reason in rs.skipped)

    def test_shared_network_disjoint_ids(self):
        rs = compile_ruleset(self.RULES)
        assert rs.network.node_count() == sum(
            p.network is rs.network and p.node_count >= 0 for p in rs.patterns
        ) * 0 + rs.network.node_count()  # network is shared
        for compiled in rs.patterns:
            assert compiled.network is rs.network

    def test_report_ids_tag_rules(self):
        rs = compile_ruleset(self.RULES)
        report_ids = {
            n.report_id for n in rs.network.reporting_nodes()
        }
        assert report_ids == {"r1", "r2", "r3"}

    def test_plain_string_rules(self):
        rs = compile_ruleset([r"ab", r"cd{2,9}"])
        assert len(rs.patterns) == 2

    def test_node_monotonicity_in_threshold(self):
        """More unfolding never shrinks the network."""
        sizes = []
        for threshold in (0, 5, 20, 50, math.inf):
            rs = compile_ruleset(self.RULES, unfold_threshold=threshold)
            sizes.append(rs.node_count)
        assert sizes == sorted(sizes)

    def test_decision_counts_aggregate(self):
        rs = compile_ruleset(self.RULES)
        counts = rs.decision_counts()
        assert counts[Decision.COUNTER] == 1
        assert counts[Decision.BITVECTOR] == 1

    def test_duplicate_rule_ids_skip_instead_of_crash(self):
        # regression: two rules sharing a rule_id used to escape as an
        # uncaught ValueError ("duplicate node id") from the shared
        # network's id namespace
        rs = compile_ruleset([("dup", "abc"), ("dup", "xyz"), ("ok", "q")])
        assert [p.report_id for p in rs.patterns] == ["dup", "ok"]
        assert len(rs.skipped) == 1
        rule_id, reason = rs.skipped[0]
        assert rule_id == "dup"
        assert "duplicate rule id" in reason
        # the first occurrence won: 'abc' matches, 'xyz' does not
        from repro.engine.scanner import scan_bytes

        assert scan_bytes(rs.network, b"abc xyz").reports == {(3, "dup")}

    def test_duplicate_ids_among_bare_strings_are_impossible(self):
        # positional ids are unique by construction
        rs = compile_ruleset(["ab", "ab"])
        assert len(rs.patterns) == 2
        assert not rs.skipped
