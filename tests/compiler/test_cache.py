"""The persistent compiled-ruleset cache (repro.compiler.cache).

Round-trip: save -> load -> identical scan results, with warm starts
skipping compilation entirely.  Invalidation: any option or rule change
(and any version skew or corruption) must miss, never poison.
"""

import os
import pickle

import pytest

from repro.compiler import cache as cache_mod
from repro.compiler.cache import (
    load_artifact,
    ruleset_cache_key,
)
from repro.matching import RulesetMatcher

RULES = [
    ("r1", r"ab{2,5}c"),
    ("r2", r"ab{2,5}d"),
    ("end", r"xyz$"),
    ("nul", r"q*"),
    ("bad", r"(a)\1"),
]
DATA = b"zabbbc abbd xyz abbbbd qqq xyz"


class TestCacheKey:
    def test_deterministic(self):
        assert ruleset_cache_key(RULES) == ruleset_cache_key(list(RULES))

    def test_rules_and_order_matter(self):
        assert ruleset_cache_key(RULES) != ruleset_cache_key(RULES[:-1])
        assert ruleset_cache_key(RULES) != ruleset_cache_key(RULES[::-1])

    def test_every_option_invalidates(self):
        base = ruleset_cache_key(RULES)
        assert ruleset_cache_key(RULES, unfold_threshold=3) != base
        assert ruleset_cache_key(RULES, method="exact") != base
        assert ruleset_cache_key(RULES, strict_modules=False) != base
        assert ruleset_cache_key(RULES, max_pairs=10) != base
        assert ruleset_cache_key(RULES, bv_module_size=2000) != base
        assert ruleset_cache_key(RULES, opt_level=1) != base

    def test_rule_id_pattern_boundary_is_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc")
        assert ruleset_cache_key([("ab", "c")]) != ruleset_cache_key([("a", "bc")])

    def test_separator_bytes_in_rules_cannot_collide(self):
        # regression: in-band \x00/\x01 framing let one rule containing
        # the separators collide with two separate rules
        assert ruleset_cache_key([("a", "b\x00c\x01d")]) != ruleset_cache_key(
            [("a", "b"), ("c", "d")]
        )


class TestRoundTrip:
    @pytest.mark.parametrize("opt_level", [0, 1])
    def test_warm_start_scans_identically(self, tmp_path, opt_level):
        cache_dir = str(tmp_path)
        cold = RulesetMatcher(RULES, opt_level=opt_level, cache_dir=cache_dir)
        assert not cold.compile_info.cache_hit
        assert cold.compile_info.cache_path is not None
        assert os.path.exists(cold.compile_info.cache_path)

        warm = RulesetMatcher(RULES, opt_level=opt_level, cache_dir=cache_dir)
        assert warm.compile_info.cache_hit
        assert warm.ruleset is None  # no CompiledPatterns rebuilt
        assert warm.scan(DATA) == cold.scan(DATA)
        assert warm.scan_stream([DATA[:7], DATA[7:]]) == cold.scan(DATA)
        assert warm.skipped == cold.skipped
        assert warm.empty_match_rules() == cold.empty_match_rules()
        assert warm.resources() == cold.resources()
        # the reference engine still works from the cached network
        assert warm.scan(DATA, engine="reference") == cold.scan(DATA)

    def test_tables_ship_in_the_artifact(self, tmp_path):
        cache_dir = str(tmp_path)
        RulesetMatcher(RULES, cache_dir=cache_dir)
        warm = RulesetMatcher(RULES, cache_dir=cache_dir)
        # tables came off disk -- no lazy compile left to do
        assert warm._tables is not None
        assert warm.tables.n_classes >= 1
        # the source network travels with them (reference backend)
        assert warm.tables.network is not None

    def test_artifact_records_validated_backends(self, tmp_path):
        from repro.compiler.cache import artifact_path
        from repro.engine.backends import validated_backend_names

        cache_dir = str(tmp_path)
        cold = RulesetMatcher(RULES, cache_dir=cache_dir)
        key = os.path.basename(cold.compile_info.cache_path)
        artifact = pickle.load(
            open(os.path.join(cache_dir, key), "rb")
        )
        assert artifact.backends == validated_backend_names(cold.tables)
        assert "stream" in artifact.backends
        warm = RulesetMatcher(RULES, cache_dir=cache_dir)
        assert warm.compile_info.cache_hit
        assert warm.validated_backends == artifact.backends
        assert artifact_path(cache_dir, artifact.key) == cold.compile_info.cache_path

    def test_sharded_matchers_cache_per_shard(self, tmp_path):
        from repro.engine.parallel import ShardedMatcher

        cache_dir = str(tmp_path)
        cold = ShardedMatcher(RULES, shards=2, cache_dir=cache_dir)
        warm = ShardedMatcher(RULES, shards=2, cache_dir=cache_dir)
        assert all(not info.cache_hit for info in cold.compile_infos)
        assert all(info.cache_hit for info in warm.compile_infos)
        assert warm.scan(DATA) == cold.scan(DATA)


class TestInvalidation:
    def test_option_change_misses(self, tmp_path):
        cache_dir = str(tmp_path)
        RulesetMatcher(RULES, cache_dir=cache_dir)
        changed = RulesetMatcher(RULES, opt_level=1, cache_dir=cache_dir)
        assert not changed.compile_info.cache_hit
        threshold = RulesetMatcher(
            RULES, unfold_threshold=4, cache_dir=cache_dir
        )
        assert not threshold.compile_info.cache_hit

    def test_rule_change_misses(self, tmp_path):
        cache_dir = str(tmp_path)
        RulesetMatcher(RULES, cache_dir=cache_dir)
        other = RulesetMatcher(RULES[:-1], cache_dir=cache_dir)
        assert not other.compile_info.cache_hit

    def test_corrupt_artifact_recompiles(self, tmp_path):
        cache_dir = str(tmp_path)
        cold = RulesetMatcher(RULES, cache_dir=cache_dir)
        path = cold.compile_info.cache_path
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        recovered = RulesetMatcher(RULES, cache_dir=cache_dir)
        assert not recovered.compile_info.cache_hit
        assert recovered.scan(DATA) == cold.scan(DATA)
        # ... and the overwrite repaired the entry
        assert RulesetMatcher(RULES, cache_dir=cache_dir).compile_info.cache_hit

    def test_foreign_pickle_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path)
        cold = RulesetMatcher(RULES, cache_dir=cache_dir)
        with open(cold.compile_info.cache_path, "wb") as handle:
            pickle.dump({"not": "an artifact"}, handle)
        assert not RulesetMatcher(RULES, cache_dir=cache_dir).compile_info.cache_hit

    def test_version_skew_is_a_miss(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path)
        cold = RulesetMatcher(RULES, cache_dir=cache_dir)
        key = os.path.basename(cold.compile_info.cache_path)[len("ruleset-"):-len(".pkl")]
        assert load_artifact(cache_dir, key) is not None
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", cache_mod.CACHE_VERSION + 1)
        assert load_artifact(cache_dir, key) is None

    def test_missing_dir_is_a_miss_not_an_error(self, tmp_path):
        missing = str(tmp_path / "nowhere")
        matcher = RulesetMatcher(RULES, cache_dir=missing)
        assert not matcher.compile_info.cache_hit
        assert os.path.isdir(missing)  # created on save
