"""The optimisation pass pipeline (repro.compiler.passes).

Contract under test: at every opt level the optimized network produces
exactly the same distinct ``(position, report_id)`` report set as the
unoptimized network, on every input -- while -O1 demonstrably shrinks
shared-prefix rulesets.  ``-O0`` additionally keeps byte-exact
``ActivityStats`` (the Table 2 experiments depend on it).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.passes import (
    compute_alphabet_classes,
    eliminate_dead_nodes,
    run_passes,
    share_prefixes,
)
from repro.compiler.pipeline import compile_pattern, compile_ruleset
from repro.engine.scanner import scan_bytes
from repro.hardware.simulator import NetworkSimulator
from repro.matching import RulesetMatcher
from repro.mnrl.network import Network
from repro.mnrl.nodes import STE, StartType
from repro.regex.charclass import CharClass
from repro.workloads.inputs import plant_matches, stream_for_style
from repro.workloads.synth import (
    clamav_like,
    protomata_like,
    snort_like,
    spamassassin_like,
    suricata_like,
)


class TestAlphabetClasses:
    def test_two_class_partition(self):
        compiled = compile_pattern(r"[a-f]+", report_id="p")
        classes = compute_alphabet_classes(compiled.network)
        assert classes.n_classes == 2
        assert len(classes.byte_to_class) == 256
        assert len(classes.representatives) == 2
        # all of [a-f] share a class; everything else shares the other
        inside = {classes.byte_to_class[b] for b in b"abcdef"}
        outside = {classes.byte_to_class[b] for b in b"xyz01"}
        assert len(inside) == 1 and len(outside) == 1 and inside != outside

    def test_literal_chain_distinguishes_each_byte(self):
        compiled = compile_pattern(r"abc", report_id="p")
        classes = compute_alphabet_classes(compiled.network)
        # {a}, {b}, {c}, rest
        assert classes.n_classes == 4

    def test_empty_network_collapses_to_one_class(self):
        assert compute_alphabet_classes(Network("empty")).n_classes == 1

    def test_representatives_map_back(self):
        compiled = compile_pattern(r"(GET|PUT) [0-9]{2,8}", report_id="p")
        classes = compute_alphabet_classes(compiled.network)
        for index, byte in enumerate(classes.representatives):
            assert classes.byte_to_class[byte] == index


class TestSharePrefixes:
    def test_common_prefix_folds_across_rules(self):
        rs = compile_ruleset([("r1", "abcX"), ("r2", "abcY")])
        before = rs.network.ste_count()
        merged = share_prefixes(rs.network)
        assert merged == 3  # the shared a, b, c chain
        assert rs.network.ste_count() == before - 3
        rs.network.validate()
        assert scan_bytes(rs.network, b"zabcX abcY").reports == {
            (5, "r1"),
            (10, "r2"),
        }

    def test_reporting_tails_with_distinct_ids_survive(self):
        rs = compile_ruleset([("r1", "ab"), ("r2", "ab")])
        merged = share_prefixes(rs.network)
        assert merged == 1  # 'a' folds; the reporting 'b's must not
        reports = scan_bytes(rs.network, b"xab").reports
        assert reports == {(3, "r1"), (3, "r2")}

    def test_anchored_and_unanchored_prefixes_stay_apart(self):
        rs = compile_ruleset([("r1", "abX"), ("r2", "^abY")])
        share_prefixes(rs.network)
        data = b"zzabX abY"
        assert scan_bytes(rs.network, data).reports == {(5, "r1")}
        assert scan_bytes(rs.network, b"abY zabX").reports == {
            (3, "r2"),
            (8, "r1"),
        }

    def test_self_loops_fold(self):
        rs = compile_ruleset([("r1", "^a+X"), ("r2", "^a+Y")])
        before = rs.network.ste_count()
        merged = share_prefixes(rs.network)
        assert merged >= 1
        assert rs.network.ste_count() < before
        assert scan_bytes(rs.network, b"aaaX").reports == {(4, "r1")}
        assert scan_bytes(rs.network, b"aY").reports == {(2, "r2")}


class TestDeadNodeElimination:
    def _ste(self, node_id, pattern_bytes, **kwargs):
        return STE(node_id, CharClass.of_bytes(pattern_bytes), **kwargs)

    def test_unreachable_ste_removed(self):
        network = Network("n")
        network.add(
            self._ste("live", b"a", start=StartType.ALL_INPUT, report=True)
        )
        network.add(self._ste("orphan", b"b"))  # no start, no inputs
        assert eliminate_dead_nodes(network) == 1
        assert set(network.nodes) == {"live"}

    def test_unproductive_chain_removed(self):
        network = Network("n")
        network.add(
            self._ste("a", b"a", start=StartType.ALL_INPUT, report=True)
        )
        network.add(self._ste("b", b"b", start=StartType.ALL_INPUT))
        network.add(self._ste("c", b"c"))
        network.connect("b", "o", "c", "i")  # b -> c reaches no report
        assert eliminate_dead_nodes(network) == 2
        assert set(network.nodes) == {"a"}

    def test_empty_class_ste_is_dead(self):
        network = Network("n")
        network.add(
            self._ste("start", b"a", start=StartType.ALL_INPUT)
        )
        network.add(STE("never", CharClass.empty(), report=True))
        network.add(self._ste("tail", b"b", report=True))
        network.connect("start", "o", "never", "i")
        network.connect("start", "o", "tail", "i")
        eliminate_dead_nodes(network)
        assert set(network.nodes) == {"start", "tail"}

    def test_lo_zero_counter_fires_on_lst_alone(self):
        # regression: a lo=0 counter satisfies lo <= count <= hi with
        # no fst signal ever arriving, so it must survive even when its
        # only fst driver is dead -- and the dead driver must be kept
        # too, or Network.validate() would reject the missing wiring
        network = Network("n")
        network.add(STE("deadfst", CharClass.empty()))
        network.add(
            self._ste("livelst", b"x", start=StartType.ALL_INPUT)
        )
        from repro.mnrl.nodes import CounterNode

        network.add(
            CounterNode(
                "c", 0, 3, start=StartType.ALL_INPUT, report=True, report_id="r"
            )
        )
        network.connect("deadfst", "o", "c", "fst")
        network.connect("livelst", "o", "c", "lst")
        sim = NetworkSimulator(network)
        sim.run(b"x")
        want = sim.distinct_reports()
        assert want == {(1, "r")}
        eliminate_dead_nodes(network)
        network.validate()
        assert scan_bytes(network, b"x").reports == want

    def test_compiled_networks_have_no_dead_nodes(self):
        # sanity: the emitter does not normally produce garbage
        rs = compile_ruleset([("r1", "ab{2,9}c"), ("r2", "x.{3,7}y$")])
        assert eliminate_dead_nodes(rs.network) == 0


SUITES = [
    (snort_like, 12),
    (suricata_like, 12),
    (protomata_like, 10),
    (spamassassin_like, 12),
    (clamav_like, 8),
]


@pytest.mark.parametrize("factory, total", SUITES)
def test_synthetic_suite_report_equivalence_across_opt_levels(factory, total):
    """O0 and O1 agree on every report over matching traffic, and the
    table engine agrees with the reference simulator on the optimized
    network."""
    suite = factory(total=total, seed=23)
    rules = suite.patterns()
    rs0 = compile_ruleset(rules)
    rs1 = compile_ruleset(rules, opt_level=1)
    rs1.network.validate()
    background = stream_for_style(suite.input_style, 3000, seed=4)
    data = plant_matches(background, [r.pattern for r in suite.rules], seed=5)
    want = scan_bytes(rs0.network, data).reports
    got = scan_bytes(rs1.network, data).reports
    assert got == want
    sim = NetworkSimulator(rs1.network)
    sim.run(data)
    assert sim.distinct_reports() == want


def test_opt0_keeps_activity_stats_byte_exact():
    rules = [("r1", "ab{2,6}c"), ("r2", "ab{2,6}d"), ("r3", "x.{2,9}y")]
    data = b"zabbbc abbd xqqqy" * 4
    rs_plain = compile_ruleset(rules)
    rs_o0 = compile_ruleset(rules, opt_level=0)
    assert rs_o0.optimization is None
    plain = scan_bytes(rs_plain.network, data)
    o0 = scan_bytes(rs_o0.network, data)
    assert o0.reports == plain.reports
    assert o0.stats == plain.stats  # field-for-field, not just equivalent


def test_optimization_report_counts():
    rs = compile_ruleset([("r1", "abcdX"), ("r2", "abcdY")], opt_level=1)
    report = rs.optimization
    assert report is not None
    assert report.merged_stes == 4
    assert report.stes_before - report.stes_after == 4
    assert report.nodes_after == rs.network.node_count()
    assert 1 <= report.alphabet_classes <= 256
    assert "STEs merged" in report.describe()


def test_negative_opt_level_rejected():
    with pytest.raises(ValueError):
        compile_ruleset([("r", "ab")], opt_level=-1)


# ----------------------------------------------------------------------
# Property tests: report-set equivalence across random inputs/chunkings
# ----------------------------------------------------------------------
#: rule pool mixing shared prefixes, anchors, counters, bit vectors,
#: self-loops, and alternation -- the shapes the passes rewrite
RULE_POOL = [
    ("lit1", r"abc"),
    ("lit2", r"abd"),
    ("lit3", r"abcd"),
    ("anch1", r"^ab"),
    ("anch2", r"^ac"),
    ("end1", r"bc$"),
    ("loop1", r"a+bc"),
    ("loop2", r"a+bd"),
    ("ctr1", r"[^a]a{2,5}b"),
    ("ctr2", r"[^a]a{2,5}c"),
    ("bv1", r"b.{2,4}c"),
    ("alt1", r"(ab|cd)x"),
    ("nul1", r"c*d"),
]

_MATCHERS: dict = {}


def _matchers():
    if not _MATCHERS:
        _MATCHERS[0] = RulesetMatcher(RULE_POOL, opt_level=0)
        _MATCHERS[1] = RulesetMatcher(RULE_POOL, opt_level=1)
        summary = _MATCHERS[1].resources()
        assert summary.merged_stes > 0  # the pool is built to share
    return _MATCHERS[0], _MATCHERS[1]


@given(data=st.lists(st.sampled_from(list(b"abcdx")), max_size=48).map(bytes))
@settings(max_examples=80, deadline=None)
def test_property_optimized_reports_equal_unoptimized(data):
    m0, m1 = _matchers()
    assert m1.scan(data) == m0.scan(data)


@given(
    data=st.lists(st.sampled_from(list(b"abcdx")), max_size=48).map(bytes),
    cuts=st.lists(st.integers(min_value=0, max_value=48), max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_property_optimized_streaming_equals_buffer(data, cuts):
    _, m1 = _matchers()
    points = sorted({min(c, len(data)) for c in cuts})
    chunks, prev = [], 0
    for point in points:
        chunks.append(data[prev:point])
        prev = point
    chunks.append(data[prev:])
    assert m1.scan_stream(chunks) == m1.scan(data)


@given(
    subset=st.lists(
        st.sampled_from(range(len(RULE_POOL))),
        min_size=1,
        max_size=4,
        unique=True,
    )
)
@settings(max_examples=20, deadline=None)
def test_property_rule_subsets_stay_equivalent(subset):
    """Optimisation of any rule subset preserves reports on a probe
    stream exercising all pool alphabets."""
    key = tuple(sorted(subset))
    cache = _MATCHERS.setdefault("subsets", {})
    if key not in cache:
        rules = [RULE_POOL[i] for i in key]
        cache[key] = (
            compile_ruleset(rules),
            compile_ruleset(rules, opt_level=1),
        )
    rs0, rs1 = cache[key]
    probe = b"abc abd abcd ac xaaaab baaac b12c abx cdx cccd bc"
    assert (
        scan_bytes(rs1.network, probe).reports
        == scan_bytes(rs0.network, probe).reports
    )
