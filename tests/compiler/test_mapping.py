"""Tests for CAMA placement (PE packing, co-location, port groups)."""

from repro.compiler.mapping import map_network
from repro.compiler.pipeline import compile_pattern, compile_ruleset
from repro.hardware.params import CamaGeometry
from repro.mnrl.network import Network
from repro.mnrl.nodes import CounterNode, STE, StartType
from repro.regex.charclass import CharClass


class TestBasicPlacement:
    def test_small_pattern_fits_one_pe(self):
        compiled = compile_pattern(r"a(bc){2,9}d")
        mapping = map_network(compiled.network)
        assert mapping.ok
        assert mapping.bank.pes_used == 1
        assert mapping.bank.cam_arrays_used == 1

    def test_module_colocated_with_port_stes(self):
        compiled = compile_pattern(r"x[^a]a{2,40}y")
        mapping = map_network(compiled.network)
        net = compiled.network
        (ctr,) = net.counters()
        pe = mapping.pe_of(ctr.id)
        for conn in net.incoming(ctr.id):
            assert mapping.pe_of(conn.source) == pe

    def test_every_node_placed(self):
        rs = compile_ruleset([r"[^a]a{2,30}", r"foo.{3,20}bar", r"(xy)+z"])
        mapping = map_network(rs.network)
        assert set(mapping.placement) == set(rs.network.nodes)


class TestCapacities:
    def test_many_rules_spill_to_new_pes(self):
        rules = [(f"r{i}", "abcdefgh" * 8) for i in range(20)]
        rs = compile_ruleset(rules)  # 64 STEs per rule = 1280 total
        mapping = map_network(rs.network)
        assert mapping.bank.pes_used >= 3  # 512 STEs per PE
        geometry = mapping.bank.geometry
        for pe in mapping.bank.pes:
            assert len(pe.stes) <= geometry.stes_per_pe
            assert len(pe.counters) <= geometry.counters_per_pe
            assert pe.bv_bits_used <= geometry.bit_vector_bits_per_pe

    def test_bit_vector_segments_share_module(self):
        # two small bit vectors pack into one PE's 2000-bit module
        rs = compile_ruleset([r"a.{2,300}b", r"c.{2,400}d"])
        mapping = map_network(rs.network)
        assert mapping.bank.bv_modules_used == 1
        assert mapping.bank.bv_bits_used == 300 + 400
        assert mapping.bank.bv_waste_bits == 2000 - 700

    def test_oversized_bit_vectors_split_pes(self):
        rs = compile_ruleset([r"a.{2,1500}b", r"c.{2,1400}d"])
        mapping = map_network(rs.network)
        assert mapping.bank.bv_modules_used == 2

    def test_counter_capacity(self):
        # 10 counters exceed one PE's 8 slots -> at least 2 PEs
        rules = [(f"g{i}", rf"[^a]a{{2,{20 + i}}}") for i in range(10)]
        rs = compile_ruleset(rules)
        mapping = map_network(rs.network)
        assert rs.network.counter_count() == 10
        assert mapping.bank.pes_used >= 2


class TestPortGroups:
    def test_fanin_within_group_ok(self):
        compiled = compile_pattern(r"(ab|cd|ef){2,9}x")
        mapping = map_network(compiled.network)
        assert mapping.ok

    def test_excess_fanin_recorded(self):
        # counter whose body has > 8 first STEs violates the port group
        alternatives = "|".join(f"{c}z" for c in "abcdefghij")  # 10 firsts
        compiled = compile_pattern(rf"q({alternatives}){{2,9}}x")
        mapping = map_network(compiled.network)
        if compiled.network.counter_count():
            assert any(v.port == "fst" for v in mapping.violations)


class TestOversizedAtoms:
    def test_split_with_violation_note(self):
        net = Network("big")
        geometry = CamaGeometry()
        ctr = net.add(CounterNode("c", 1, 3, start=StartType.ALL_INPUT))
        first = net.add(STE("s0", CharClass.of_char("a"), start=StartType.ALL_INPUT))
        net.connect("s0", "o", "c", "fst")
        net.connect("s0", "o", "c", "lst")
        prev = "s0"
        for i in range(1, geometry.stes_per_pe + 10):
            ste = net.add(STE(f"s{i}", CharClass.of_char("a")))
            net.connect(prev, "o", f"s{i}", "i")
            net.connect(f"s{i}", "o", "c", "lst")
            prev = f"s{i}"
        mapping = map_network(net)
        assert not mapping.ok
        assert any("split" in v.detail for v in mapping.violations)
        assert set(mapping.placement) == set(net.nodes)
