"""Public-API snapshot: keep the exported surface honest.

Pins ``repro.__all__`` and the session-protocol signatures so that
accidental export drift or signature changes fail a test instead of
silently breaking downstream users.  Deliberate surface changes update
the snapshot here *and* the README migration guide.
"""

import inspect

import repro
from repro import (
    Match,
    MatchClient,
    Matcher,
    MatchServer,
    MatchSession,
    MultiStreamScanner,
    PatternMatcher,
    QueueSink,
    RemoteShardedMatcher,
    RulesetMatcher,
    ServerStats,
    ShardedMatcher,
)

EXPECTED_ALL = sorted(
    [
        "__version__",
        # regex
        "CharClass", "Pattern", "parse", "simplify",
        # nca
        "NCA", "build_nca", "NCAExecutor", "CountingSetExecutor",
        # analysis
        "Method", "InstanceResult", "RegexAnalysisResult", "analyze",
        "analyze_pattern",
        # mnrl
        "Network", "STE", "CounterNode", "BitVectorNode",
        # compiler
        "Decision", "CompiledPattern", "CompiledRuleset",
        "OptimizationReport", "compile_pattern", "compile_ruleset",
        "compute_alphabet_classes", "run_passes", "map_network",
        "NetworkMapping",
        # hardware
        "NetworkSimulator", "ReportEvent", "simulate", "CAM_ARRAY",
        "COUNTER", "BIT_VECTOR", "GEOMETRY", "area_of_mapping",
        "energy_of_run", "savings_of_mappings",
        # engine
        "TransitionTables", "compile_tables", "StreamScanner",
        "BlockScanner", "ShardedMatcher", "merge_scan_results",
        # execution backends
        "Backend", "BackendInfo", "available_backends",
        "register_backend", "resolve_backend",
        # high-level facade
        "RulesetMatcher", "PatternMatcher", "ScanResult", "CompileInfo",
        "merge_compile_infos",
        # session API
        "Match", "match_dict", "MatchSession", "Matcher",
        "MultiStreamScanner", "CollectorSink", "QueueSink",
        "UNNAMED_REPORT",
        # ruleset ingestion frontend
        "SnortRule", "TriagedRule", "TriageReport", "LoadedRuleset",
        "load_rules", "load_rules_text", "parse_rule", "translate_rule",
        # serving subsystem
        "MatchServer", "MatcherHandle", "MatchClient", "ServerStats",
        "WorkerFleet", "merge_server_stats", "scan_tagged_remote",
        # cluster scatter-gather
        "RemoteShardedMatcher", "LocalShardCluster", "ClusterSpec",
        "ClusterPartialResultError",
    ]
)


def params_of(fn) -> list[str]:
    return list(inspect.signature(fn).parameters)


def keyword_only_of(fn) -> set[str]:
    return {
        name
        for name, param in inspect.signature(fn).parameters.items()
        if param.kind is inspect.Parameter.KEYWORD_ONLY
    }


class TestExports:
    def test_all_snapshot(self):
        assert sorted(repro.__all__) == EXPECTED_ALL

    def test_everything_in_all_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestSessionProtocolSignatures:
    def test_match_fields(self):
        assert [f.name for f in Match.__dataclass_fields__.values()] == [
            "rule", "end", "stream", "code", "generation",
        ]

    def test_session_methods(self):
        assert params_of(MatchSession.feed) == ["self", "chunk"]
        assert params_of(MatchSession.finish) == ["self"]
        assert params_of(MatchSession.matches) == ["self", "chunks"]
        assert params_of(MatchSession.result) == ["self"]

    @staticmethod
    def _check_session_factory(fn):
        assert params_of(fn) == ["self", "engine", "stream", "on_match"]
        assert keyword_only_of(fn) == {"stream", "on_match"}

    def test_matcher_session_factories_agree(self):
        self._check_session_factory(RulesetMatcher.session)
        self._check_session_factory(ShardedMatcher.session)

    def test_matcher_protocol_members(self):
        for member in (
            "session", "scan", "scan_stream", "scan_many",
            "matched_rules", "resources", "skipped",
        ):
            assert hasattr(RulesetMatcher, member), member
            assert hasattr(ShardedMatcher, member), member
            assert hasattr(RemoteShardedMatcher, member), member
            assert hasattr(Matcher, member), member

    def test_multistream_methods(self):
        assert params_of(MultiStreamScanner.feed) == ["self", "tag", "chunk"]
        assert params_of(MultiStreamScanner.finish) == ["self", "tag"]
        assert params_of(MultiStreamScanner.scan_tagged) == ["self", "pairs"]
        for member in ("finish_all", "result", "results", "streams", "session"):
            assert hasattr(MultiStreamScanner, member), member

    def test_finditer_signature(self):
        assert params_of(PatternMatcher.finditer) == ["self", "data", "stream"]

    def test_queue_sink_overflow_surface(self):
        assert params_of(QueueSink.__init__) == ["self", "maxsize", "overflow"]
        sink = QueueSink(maxsize=1, overflow="drop_oldest")
        assert sink.dropped == 0  # the dropped-count is part of the API


class TestServeSurface:
    def test_match_server_signature(self):
        params = params_of(MatchServer.__init__)
        assert params[:2] == ["self", "matcher"]
        assert keyword_only_of(MatchServer.__init__) == {
            "host", "port", "engine", "queue_depth", "workers",
            "drain_timeout", "sock", "reuse_port", "worker",
        }
        for member in ("start", "stop", "serve_forever", "stats",
                       "address", "connections", "reload", "matcher"):
            assert hasattr(MatchServer, member), member

    def test_match_client_surface(self):
        for member in ("connect", "open", "feed", "close_stream", "stats",
                       "ping", "quit", "aclose"):
            assert hasattr(MatchClient, member), member

    def test_server_stats_fields(self):
        fields = set(ServerStats.__dataclass_fields__)
        assert {
            "engine", "connections_open", "connections_total",
            "streams_open", "streams_total", "bytes_scanned",
            "matches_emitted", "feeds", "errors", "busy_seconds",
            "uptime_seconds",
        } <= fields
        assert isinstance(ServerStats.throughput_bps, property)
        assert callable(ServerStats.as_dict)
