"""Public-API snapshot: keep the exported surface honest.

Pins ``repro.__all__`` and the session-protocol signatures so that
accidental export drift or signature changes fail a test instead of
silently breaking downstream users.  Deliberate surface changes update
the snapshot here *and* the README migration guide.
"""

import inspect

import repro
from repro import (
    Match,
    Matcher,
    MatchSession,
    MultiStreamScanner,
    PatternMatcher,
    RulesetMatcher,
    ShardedMatcher,
)

EXPECTED_ALL = sorted(
    [
        "__version__",
        # regex
        "CharClass", "Pattern", "parse", "simplify",
        # nca
        "NCA", "build_nca", "NCAExecutor", "CountingSetExecutor",
        # analysis
        "Method", "InstanceResult", "RegexAnalysisResult", "analyze",
        "analyze_pattern",
        # mnrl
        "Network", "STE", "CounterNode", "BitVectorNode",
        # compiler
        "Decision", "CompiledPattern", "CompiledRuleset",
        "OptimizationReport", "compile_pattern", "compile_ruleset",
        "compute_alphabet_classes", "run_passes", "map_network",
        "NetworkMapping",
        # hardware
        "NetworkSimulator", "ReportEvent", "simulate", "CAM_ARRAY",
        "COUNTER", "BIT_VECTOR", "GEOMETRY", "area_of_mapping",
        "energy_of_run", "savings_of_mappings",
        # engine
        "TransitionTables", "compile_tables", "StreamScanner",
        "BlockScanner", "ShardedMatcher", "merge_scan_results",
        # execution backends
        "Backend", "BackendInfo", "available_backends",
        "register_backend", "resolve_backend",
        # high-level facade
        "RulesetMatcher", "PatternMatcher", "ScanResult", "CompileInfo",
        "merge_compile_infos",
        # session API
        "Match", "match_dict", "MatchSession", "Matcher",
        "MultiStreamScanner", "CollectorSink", "QueueSink",
        "UNNAMED_REPORT",
    ]
)


def params_of(fn) -> list[str]:
    return list(inspect.signature(fn).parameters)


def keyword_only_of(fn) -> set[str]:
    return {
        name
        for name, param in inspect.signature(fn).parameters.items()
        if param.kind is inspect.Parameter.KEYWORD_ONLY
    }


class TestExports:
    def test_all_snapshot(self):
        assert sorted(repro.__all__) == EXPECTED_ALL

    def test_everything_in_all_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestSessionProtocolSignatures:
    def test_match_fields(self):
        assert [f.name for f in Match.__dataclass_fields__.values()] == [
            "rule", "end", "stream", "code",
        ]

    def test_session_methods(self):
        assert params_of(MatchSession.feed) == ["self", "chunk"]
        assert params_of(MatchSession.finish) == ["self"]
        assert params_of(MatchSession.matches) == ["self", "chunks"]
        assert params_of(MatchSession.result) == ["self"]

    @staticmethod
    def _check_session_factory(fn):
        assert params_of(fn) == ["self", "engine", "stream", "on_match"]
        assert keyword_only_of(fn) == {"stream", "on_match"}

    def test_matcher_session_factories_agree(self):
        self._check_session_factory(RulesetMatcher.session)
        self._check_session_factory(ShardedMatcher.session)

    def test_matcher_protocol_members(self):
        for member in (
            "session", "scan", "scan_stream", "scan_many",
            "matched_rules", "resources", "skipped",
        ):
            assert hasattr(RulesetMatcher, member), member
            assert hasattr(ShardedMatcher, member), member
            assert hasattr(Matcher, member), member

    def test_multistream_methods(self):
        assert params_of(MultiStreamScanner.feed) == ["self", "tag", "chunk"]
        assert params_of(MultiStreamScanner.finish) == ["self", "tag"]
        assert params_of(MultiStreamScanner.scan_tagged) == ["self", "pairs"]
        for member in ("finish_all", "result", "results", "streams", "session"):
            assert hasattr(MultiStreamScanner, member), member

    def test_finditer_signature(self):
        assert params_of(PatternMatcher.finditer) == ["self", "data", "stream"]
