"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_unambiguous(self, capsys):
        assert main(["analyze", "^a{3}b"]) == 0
        out = capsys.readouterr().out
        assert "unambiguous" in out

    def test_ambiguous_with_witness(self, capsys):
        assert main(["analyze", ".*x{2}", "--method", "exact", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "AMBIGUOUS" in out
        assert "witness=" in out

    def test_no_counting(self, capsys):
        assert main(["analyze", "abc"]) == 0
        assert "nothing to analyze" in capsys.readouterr().out


class TestCompile:
    def test_prints_resources_and_mnrl(self, capsys):
        assert main(["compile", "a(bc){2,4}d"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert '"type": "counter"' in out

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out.mnrl.json"
        assert main(["compile", "a{2,9}", "-o", str(target)]) == 0
        assert target.exists()
        from repro.mnrl.serialize import load

        network = load(str(target))
        assert network.node_count() >= 1

    def test_threshold_flag(self, capsys):
        assert main(["compile", "a(bc){2,4}d", "--threshold", "inf"]) == 0
        out = capsys.readouterr().out
        assert "0 counters" in out


class TestScan:
    def test_scan_files(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text(
            "# comment line\n"
            "hit\tabc\n"
            "miss\tzzz{2,5}\n"
            "broken\t(a)\\1\n"
        )
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        assert main(["scan", "--rules", str(rules), "--input", str(data)]) == 0
        captured = capsys.readouterr()
        assert "hit: 1 match(es) at [5]" in captured.out
        assert "skipped broken" in captured.err

    def test_no_matches(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("r\tzzz\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"abc")
        main(["scan", "--rules", str(rules), "--input", str(data)])
        assert "no matches" in capsys.readouterr().out


class TestCensusAndReport:
    def test_census(self, capsys):
        assert main(["census", "--suite", "Protomata", "--total", "20"]) == 0
        out = capsys.readouterr().out
        assert "Protomata: total 20" in out

    def test_report_table2(self, capsys):
        assert main(["report", "--which", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_report_fig8(self, capsys):
        assert main(["report", "--which", "fig8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
