"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_unambiguous(self, capsys):
        assert main(["analyze", "^a{3}b"]) == 0
        out = capsys.readouterr().out
        assert "unambiguous" in out

    def test_ambiguous_with_witness(self, capsys):
        assert main(["analyze", ".*x{2}", "--method", "exact", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "AMBIGUOUS" in out
        assert "witness=" in out

    def test_no_counting(self, capsys):
        assert main(["analyze", "abc"]) == 0
        assert "nothing to analyze" in capsys.readouterr().out


class TestCompile:
    def test_prints_resources_and_mnrl(self, capsys):
        assert main(["compile", "a(bc){2,4}d"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert '"type": "counter"' in out

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out.mnrl.json"
        assert main(["compile", "a{2,9}", "-o", str(target)]) == 0
        assert target.exists()
        from repro.mnrl.serialize import load

        network = load(str(target))
        assert network.node_count() >= 1

    def test_threshold_flag(self, capsys):
        assert main(["compile", "a(bc){2,4}d", "--threshold", "inf"]) == 0
        out = capsys.readouterr().out
        assert "0 counters" in out


class TestScan:
    def test_scan_files(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text(
            "# comment line\n"
            "hit\tabc\n"
            "miss\tzzz{2,5}\n"
            "broken\t(a)\\1\n"
        )
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        assert main(["scan", "--rules", str(rules), "--input", str(data)]) == 0
        captured = capsys.readouterr()
        assert "hit: 1 match(es) at [5]" in captured.out
        # non-verbose mode summarizes skips; --verbose names the rules
        assert "skipped 1 rule(s)" in captured.err
        assert main(
            ["scan", "--rules", str(rules), "--input", str(data), "--verbose"]
        ) == 0
        captured = capsys.readouterr()
        assert "skipped broken" in captured.err
        assert "compiled in" in captured.err
        assert "-O0" in captured.out

    def test_no_matches(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("r\tzzz\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"abc")
        main(["scan", "--rules", str(rules), "--input", str(data)])
        assert "no matches" in capsys.readouterr().out

    def test_scan_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        monkeypatch.setattr(
            "sys.stdin",
            type("S", (), {"buffer": io.BytesIO(b"xxabcxx")})(),
        )
        assert main(["scan", "--rules", str(rules), "--input", "-"]) == 0
        assert "hit: 1 match(es) at [5]" in capsys.readouterr().out

    def test_scan_small_chunks_match_whole(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tab{2,4}c\nend\tc$\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"zabbbc..abbc")
        for extra in ([], ["--chunk-size", "1"]):
            assert (
                main(["scan", "--rules", str(rules), "--input", str(data)] + extra)
                == 0
            )
        first, second = capsys.readouterr().out.split("scanned", 2)[1:]
        assert first == second

    def test_scan_reference_engine(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        args = ["scan", "--rules", str(rules), "--input", str(data)]
        assert main(args + ["--engine", "reference"]) == 0
        assert "hit: 1 match(es) at [5]" in capsys.readouterr().out

    def test_scan_engine_choices_from_registry(self, tmp_path, capsys):
        """--engine accepts every registered backend name/alias plus
        auto, and all of them agree on the matches."""
        from repro.engine.backends import available_backends, engine_choices

        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        args = ["scan", "--rules", str(rules), "--input", str(data)]
        usable = {i.name for i in available_backends() if i.available}
        for engine in engine_choices():
            if engine not in usable | {"auto", "table"}:
                continue  # e.g. block without numpy
            assert main(args + ["--engine", engine]) == 0, engine
            assert "hit: 1 match(es) at [5]" in capsys.readouterr().out

    def test_scan_verbose_reports_backend_availability(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        args = ["scan", "--rules", str(rules), "--input", str(data), "-v"]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "backend stream: available" in err
        assert "backend block:" in err

    def test_scan_sharded(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("a\tabc\nb\t[0-9]{3,5}\nc\tzz\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"abc 123 zz")
        assert (
            main(
                ["scan", "--rules", str(rules), "--input", str(data), "--shards", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "a: 1 match(es)" in out
        assert "b: 1 match(es)" in out
        assert "c: 1 match(es)" in out


class TestScanStreams:
    def test_interleaved_tagged_streams(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\nnum\t[0-9]{3,5}\n")
        data = tmp_path / "streams.txt"
        # "abc" split across stream a's chunks, b interleaved between
        data.write_text("a\tza\nb\t12\na\tbc\nb\t34..\n")
        assert (
            main(
                ["scan", "--rules", str(rules), "--input", str(data), "--streams"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "served 2 stream(s)" in out
        assert "stream a: 4 bytes, 1 match(es)" in out
        assert "hit: 1 match(es) at [4]" in out
        assert "stream b: 6 bytes, 2 match(es)" in out
        assert "num: 2 match(es) at [3, 4]" in out

    def test_64_streams_isolated(self, tmp_path, capsys):
        """Acceptance: the CLI serves >= 64 interleaved tagged streams
        over one compiled ruleset."""
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        lines = []
        # two interleaved rounds: every stream's "abc" spans its chunks
        for i in range(64):
            lines.append(f"s{i:02d}\tz" + "a" * (i % 2))
        for i in range(64):
            lines.append(f"s{i:02d}\t" + ("bc" if i % 2 else "abc"))
        data = tmp_path / "streams.txt"
        data.write_text("\n".join(lines) + "\n")
        assert (
            main(
                ["scan", "--rules", str(rules), "--input", str(data), "--streams"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "served 64 stream(s)" in out
        assert out.count("hit: 1 match(es)") == 64

    def test_streams_with_shards(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("a\tabc\nb\t[0-9]{3,5}\nc\tzz\n")
        data = tmp_path / "streams.txt"
        data.write_text("x\tabc 123\ny\tzz\n")
        assert (
            main(
                [
                    "scan", "--rules", str(rules), "--input", str(data),
                    "--streams", "--shards", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stream x: 7 bytes, 2 match(es)" in out
        assert "stream y: 2 bytes, 1 match(es)" in out

    def test_payload_carriage_returns_are_data(self, tmp_path, capsys):
        """Only the line framing (one \\n, at most one preceding \\r)
        is stripped; interior/trailing \\r payload bytes are stream
        data (latin-1 is the declared chunk alphabet)."""
        rules = tmp_path / "rules.txt"
        rules.write_text("crlf\tabc\\r\n")
        data = tmp_path / "streams.txt"
        data.write_bytes(b"s\tabc\r\r\n")  # payload b"abc\r" + CRLF framing
        assert (
            main(
                ["scan", "--rules", str(rules), "--input", str(data), "--streams"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stream s: 4 bytes, 1 match(es)" in out
        assert "crlf: 1 match(es) at [4]" in out

    def test_malformed_line_reports_error(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "streams.txt"
        data.write_text("tag-without-tab\n")
        assert (
            main(
                ["scan", "--rules", str(rules), "--input", str(data), "--streams"]
            )
            == 2
        )
        assert "expected 'tag<TAB>chunk'" in capsys.readouterr().err


class TestCompileRulesAndCache:
    def test_compile_rules_to_cache_then_warm_scan(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("r1\tabcX\nr2\tabcY\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"zzabcX abcY")
        cache = str(tmp_path / "cache")
        assert (
            main(
                ["compile", "--rules", str(rules), "--cache-dir", cache, "-O", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fresh compile, -O1" in out
        assert "STEs merged" in out
        # the scan warm-starts from the artifact compile just wrote
        assert (
            main(
                [
                    "scan",
                    "--rules",
                    str(rules),
                    "--input",
                    str(data),
                    "--cache-dir",
                    cache,
                    "-O",
                    "1",
                    "--verbose",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "cache hit (warm start)" in captured.err
        assert "r1: 1 match(es)" in captured.out
        assert "r2: 1 match(es)" in captured.out

    def test_compile_without_pattern_or_rules_errors(self, capsys):
        assert main(["compile"]) == 2
        assert "provide a pattern or --rules" in capsys.readouterr().err

    def test_compile_pattern_with_cache_dir_errors(self, tmp_path, capsys):
        # --cache-dir only applies to rulesets; silently ignoring it
        # would leave users believing an artifact was written
        assert (
            main(["compile", "abc", "--cache-dir", str(tmp_path / "c")]) == 2
        )
        assert "--cache-dir requires --rules" in capsys.readouterr().err

    def test_scan_optimized_matches_unoptimized(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("p\tab{2,4}c\nq\tabd\nr\tabe$\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"zabbbc abd abe")
        for opt in ("0", "1"):
            assert (
                main(
                    ["scan", "--rules", str(rules), "--input", str(data), "-O", opt]
                )
                == 0
            )
        first, second = capsys.readouterr().out.split("scanned", 2)[1:]
        # identical match lines at every opt level (resource line differs)
        assert first.split("\n")[1:] == second.split("\n")[1:]


class TestCensusAndReport:
    def test_census(self, capsys):
        assert main(["census", "--suite", "Protomata", "--total", "20"]) == 0
        out = capsys.readouterr().out
        assert "Protomata: total 20" in out

    def test_report_table2(self, capsys):
        assert main(["report", "--which", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_report_fig8(self, capsys):
        assert main(["report", "--which", "fig8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestRulesCommand:
    """`repro rules`: triage reporting over Snort-syntax rule files."""

    FIXTURE = "tests/rules/fixtures/local.rules"

    def test_text_report(self, capsys):
        assert main(["rules", self.FIXTURE]) == 0
        out = capsys.readouterr().out
        assert "rules: 16" in out
        assert "compiled" in out and "rejected" in out

    def test_rejected_listing_names_source_lines(self, capsys):
        assert main(["rules", self.FIXTURE, "--rejected"]) == 0
        out = capsys.readouterr().out
        assert "local.rules:29 [pcre-backreference]" in out
        assert "local.rules:31 [negated-content]" in out

    def test_json_report(self, capsys):
        import json

        assert main(["rules", self.FIXTURE, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 16
        assert report["counts"] == {
            "compiled": 3, "rewritten": 6, "rejected": 7,
        }
        assert sum(report["counts"].values()) == report["total"]
        rejected = [r for r in report["rules"] if r["status"] == "rejected"]
        assert all(r["reason"] and r["origin"] for r in rejected)

    def test_json_compile_cold_then_warm(self, tmp_path, capsys):
        import json

        cache = str(tmp_path / "cache")
        assert main(["rules", self.FIXTURE, "--json", "--cache-dir", cache]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["compile"]["cache_hit"] is False
        assert cold["compile"]["rules_compiled"] == 9
        assert main(["rules", self.FIXTURE, "--json", "--cache-dir", cache]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["compile"]["cache_hit"] is True
        assert warm["compile"]["rules_compiled"] == 9

    def test_missing_file_errors(self, capsys):
        assert main(["rules", "/nonexistent/x.rules"]) == 2
        assert "x.rules" in capsys.readouterr().err

    def test_scan_snort_format(self, tmp_path, capsys):
        data = tmp_path / "payload.bin"
        data.write_bytes(b"xxGET /admin HTTP/1.1\r\nuser-agent: probe")
        assert (
            main(
                ["scan", "--format", "snort", "--rules", self.FIXTURE,
                 "--input", str(data)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "sid:1000001" in captured.out  # GET /admin literal
        assert "sid:1000003" in captured.out  # nocase'd user-agent
        assert "rejected" in captured.err  # triage note on stderr

    def test_scan_snort_format_respects_triage(self, tmp_path, capsys):
        # a rejected rule (negated content) must not reach the engine
        rules = tmp_path / "only_rejects.rules"
        rules.write_text(
            'alert tcp any any -> any any (content:!"x"; sid:1;)\n'
        )
        data = tmp_path / "d.bin"
        data.write_bytes(b"anything")
        assert (
            main(
                ["scan", "--format", "snort", "--rules", str(rules),
                 "--input", str(data)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "sid:1" not in captured.out


class TestServeConnect:
    """CLI serving: `repro connect` against a live MatchServer (the
    server side of `repro serve` is the same MatchServer; its
    signal-driven entry point is smoke-tested in CI)."""

    @staticmethod
    def _live_server(matcher):
        """Start a MatchServer on its own loop thread; returns
        (port, stop_callable)."""
        import asyncio
        import threading

        ready = threading.Event()
        box = {}

        def run():
            async def main_():
                server = await __import__(
                    "repro.serve", fromlist=["MatchServer"]
                ).MatchServer(matcher, port=0).start()
                stop = asyncio.Event()
                box["port"] = server.port
                box["stop"] = (asyncio.get_running_loop(), stop)
                ready.set()
                await stop.wait()
                await server.stop()

            asyncio.run(main_())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=30)

        def stop():
            loop, event = box["stop"]
            loop.call_soon_threadsafe(event.set)
            thread.join(timeout=30)

        return box["port"], stop

    def test_connect_streams_tagged_file(self, tmp_path, capsys):
        from repro.matching import RulesetMatcher

        port, stop = self._live_server(RulesetMatcher([("hit", "abc")]))
        tagged = tmp_path / "tagged.txt"
        tagged.write_bytes(b"a\tza\nb\txxab\na\tbc\nb\tcxx\n")
        try:
            code = main([
                "connect", "--port", str(port),
                "--input", str(tagged), "--stats",
            ])
        finally:
            stop()
        assert code == 0
        out = capsys.readouterr().out
        assert "served 2 stream(s), 11 bytes, 2 match(es)" in out
        assert "hit: 1 match(es) at [4]" in out  # stream a: za|bc
        assert "hit: 1 match(es) at [5]" in out  # stream b: xxab|cxx
        assert "server stats" in out

    def test_connect_json_document(self, tmp_path, capsys):
        """`connect --json` emits the machine-readable schema of
        docs/SERVING.md: per-stream summaries with generation-stamped
        events, totals, and the server STATS snapshot."""
        import json

        from repro.matching import RulesetMatcher

        port, stop = self._live_server(RulesetMatcher([("hit", "abc")]))
        tagged = tmp_path / "tagged.txt"
        tagged.write_bytes(b"a\tza\nb\txxab\na\tbc\nb\tcxx\n")
        try:
            code = main([
                "connect", "--port", str(port),
                "--input", str(tagged), "--json",
            ])
        finally:
            stop()
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["totals"] == {"streams": 2, "bytes": 11, "matches": 2}
        assert set(document["streams"]) == {"a", "b"}
        for stream in document["streams"].values():
            assert stream["generation"] == 0
            assert stream["matches"] == len(stream["events"]) == 1
            (event,) = stream["events"]
            assert event["rule"] == "hit" and event["generation"] == 0
        assert document["streams"]["a"]["events"][0]["end"] == 4
        assert document["stats"]["generation"] == 0
        assert document["stats"]["workers"] == 1

    def test_connect_refused_reports_cleanly(self, tmp_path, capsys):
        tagged = tmp_path / "tagged.txt"
        tagged.write_bytes(b"a\tza\n")
        code = main([
            "connect", "--port", "1", "--input", str(tagged),
            "--retries", "0",
        ])
        assert code == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_serve_bind_failure_is_one_clean_line(self, tmp_path, capsys):
        """A taken port yields one `error:` line and exit 2 -- no
        traceback -- on both the single-server and fleet paths."""
        import socket

        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = main([
                "serve", "--rules", str(rules), "--port", str(port),
            ])
            assert code == 2
            err = capsys.readouterr().err
            assert f"error: cannot bind 127.0.0.1:{port}" in err
            assert "Traceback" not in err

            code = main([
                "serve", "--rules", str(rules), "--port", str(port),
                "--workers", "2",
            ])
            assert code == 2
            err = capsys.readouterr().err
            assert f"error: cannot serve on 127.0.0.1:{port}" in err
            assert "Traceback" not in err
        finally:
            blocker.close()

    def test_parser_accepts_serve_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--rules", "r.txt", "--port", "7341",
            "--engine", "stream", "--queue-depth", "4", "--shards", "2",
            "-O", "1", "--threads", "2", "--workers", "4", "--reload",
            "--control", "/tmp/repro.sock",
        ])
        assert args.command == "serve"
        assert (args.port, args.queue_depth, args.shards) == (7341, 4, 2)
        assert (args.threads, args.workers) == (2, 4)
        assert args.reload is True
        assert args.control == "/tmp/repro.sock"
        # defaults: one in-process server, no reload, no control socket
        args = build_parser().parse_args(["serve", "--rules", "r.txt"])
        assert (args.workers, args.reload, args.control) == (1, False, None)

    def test_serve_fleet_cli_sighup_reload_roundtrip(self, tmp_path):
        """End-to-end over the real CLI: a 2-worker fleet subprocess,
        SIGHUP hot reload after editing the rule file, SIGTERM drain."""
        import json
        import os
        import signal
        import subprocess
        import sys as _sys
        import time

        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\ngone\told[0-9]\n")
        tagged = tmp_path / "tagged.txt"
        tagged.write_bytes(b"s\tza\ns\tbc old7 new!\n")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve",
             "--rules", str(rules), "--port", "0",
             "--workers", "2", "--reload"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            ready = proc.stdout.readline()
            assert "serving 2 rules on" in ready, ready
            assert "workers 2" in ready and "generation 0" in ready
            port = ready.split(" on ")[1].split(" ")[0].split(":")[1]

            def connect_json():
                out = subprocess.run(
                    [_sys.executable, "-m", "repro", "connect",
                     "--port", port, "--input", str(tagged), "--json"],
                    capture_output=True, text=True, env=env, timeout=60,
                ).stdout
                return json.loads(out)

            before = connect_json()
            assert before["streams"]["s"]["generation"] == 0
            assert {e["rule"] for e in before["streams"]["s"]["events"]} == {
                "hit", "gone",
            }

            # one rule removed, one added: the SIGHUP re-reads the file
            rules.write_text("hit\tabc\nfresh\tnew!\n")
            proc.send_signal(signal.SIGHUP)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line and proc.poll() is not None:
                    raise AssertionError("fleet process died during reload")
                if "reloaded ruleset: generation 1" in line:
                    break
            else:  # pragma: no cover - diagnostic only
                raise AssertionError("no reload acknowledgement")

            after = connect_json()
            assert after["streams"]["s"]["generation"] == 1
            assert {e["rule"] for e in after["streams"]["s"]["events"]} == {
                "hit", "fresh",
            }
            assert all(
                e["generation"] == 1 for e in after["streams"]["s"]["events"]
            )

            proc.send_signal(signal.SIGTERM)
            remaining = proc.communicate(timeout=60)[0]
            assert proc.returncode == 0
            assert "served " in remaining  # final drain summary
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
