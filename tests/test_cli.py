"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_unambiguous(self, capsys):
        assert main(["analyze", "^a{3}b"]) == 0
        out = capsys.readouterr().out
        assert "unambiguous" in out

    def test_ambiguous_with_witness(self, capsys):
        assert main(["analyze", ".*x{2}", "--method", "exact", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "AMBIGUOUS" in out
        assert "witness=" in out

    def test_no_counting(self, capsys):
        assert main(["analyze", "abc"]) == 0
        assert "nothing to analyze" in capsys.readouterr().out


class TestCompile:
    def test_prints_resources_and_mnrl(self, capsys):
        assert main(["compile", "a(bc){2,4}d"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert '"type": "counter"' in out

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out.mnrl.json"
        assert main(["compile", "a{2,9}", "-o", str(target)]) == 0
        assert target.exists()
        from repro.mnrl.serialize import load

        network = load(str(target))
        assert network.node_count() >= 1

    def test_threshold_flag(self, capsys):
        assert main(["compile", "a(bc){2,4}d", "--threshold", "inf"]) == 0
        out = capsys.readouterr().out
        assert "0 counters" in out


class TestScan:
    def test_scan_files(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text(
            "# comment line\n"
            "hit\tabc\n"
            "miss\tzzz{2,5}\n"
            "broken\t(a)\\1\n"
        )
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        assert main(["scan", "--rules", str(rules), "--input", str(data)]) == 0
        captured = capsys.readouterr()
        assert "hit: 1 match(es) at [5]" in captured.out
        # non-verbose mode summarizes skips; --verbose names the rules
        assert "skipped 1 rule(s)" in captured.err
        assert main(
            ["scan", "--rules", str(rules), "--input", str(data), "--verbose"]
        ) == 0
        captured = capsys.readouterr()
        assert "skipped broken" in captured.err
        assert "compiled in" in captured.err
        assert "-O0" in captured.out

    def test_no_matches(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("r\tzzz\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"abc")
        main(["scan", "--rules", str(rules), "--input", str(data)])
        assert "no matches" in capsys.readouterr().out

    def test_scan_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        monkeypatch.setattr(
            "sys.stdin",
            type("S", (), {"buffer": io.BytesIO(b"xxabcxx")})(),
        )
        assert main(["scan", "--rules", str(rules), "--input", "-"]) == 0
        assert "hit: 1 match(es) at [5]" in capsys.readouterr().out

    def test_scan_small_chunks_match_whole(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tab{2,4}c\nend\tc$\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"zabbbc..abbc")
        for extra in ([], ["--chunk-size", "1"]):
            assert (
                main(["scan", "--rules", str(rules), "--input", str(data)] + extra)
                == 0
            )
        first, second = capsys.readouterr().out.split("scanned", 2)[1:]
        assert first == second

    def test_scan_reference_engine(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        args = ["scan", "--rules", str(rules), "--input", str(data)]
        assert main(args + ["--engine", "reference"]) == 0
        assert "hit: 1 match(es) at [5]" in capsys.readouterr().out

    def test_scan_engine_choices_from_registry(self, tmp_path, capsys):
        """--engine accepts every registered backend name/alias plus
        auto, and all of them agree on the matches."""
        from repro.engine.backends import available_backends, engine_choices

        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        args = ["scan", "--rules", str(rules), "--input", str(data)]
        usable = {i.name for i in available_backends() if i.available}
        for engine in engine_choices():
            if engine not in usable | {"auto", "table"}:
                continue  # e.g. block without numpy
            assert main(args + ["--engine", engine]) == 0, engine
            assert "hit: 1 match(es) at [5]" in capsys.readouterr().out

    def test_scan_verbose_reports_backend_availability(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        args = ["scan", "--rules", str(rules), "--input", str(data), "-v"]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "backend stream: available" in err
        assert "backend block:" in err

    def test_scan_sharded(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("a\tabc\nb\t[0-9]{3,5}\nc\tzz\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"abc 123 zz")
        assert (
            main(
                ["scan", "--rules", str(rules), "--input", str(data), "--shards", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "a: 1 match(es)" in out
        assert "b: 1 match(es)" in out
        assert "c: 1 match(es)" in out


class TestCompileRulesAndCache:
    def test_compile_rules_to_cache_then_warm_scan(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("r1\tabcX\nr2\tabcY\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"zzabcX abcY")
        cache = str(tmp_path / "cache")
        assert (
            main(
                ["compile", "--rules", str(rules), "--cache-dir", cache, "-O", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fresh compile, -O1" in out
        assert "STEs merged" in out
        # the scan warm-starts from the artifact compile just wrote
        assert (
            main(
                [
                    "scan",
                    "--rules",
                    str(rules),
                    "--input",
                    str(data),
                    "--cache-dir",
                    cache,
                    "-O",
                    "1",
                    "--verbose",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "cache hit (warm start)" in captured.err
        assert "r1: 1 match(es)" in captured.out
        assert "r2: 1 match(es)" in captured.out

    def test_compile_without_pattern_or_rules_errors(self, capsys):
        assert main(["compile"]) == 2
        assert "provide a pattern or --rules" in capsys.readouterr().err

    def test_compile_pattern_with_cache_dir_errors(self, tmp_path, capsys):
        # --cache-dir only applies to rulesets; silently ignoring it
        # would leave users believing an artifact was written
        assert (
            main(["compile", "abc", "--cache-dir", str(tmp_path / "c")]) == 2
        )
        assert "--cache-dir requires --rules" in capsys.readouterr().err

    def test_scan_optimized_matches_unoptimized(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("p\tab{2,4}c\nq\tabd\nr\tabe$\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"zabbbc abd abe")
        for opt in ("0", "1"):
            assert (
                main(
                    ["scan", "--rules", str(rules), "--input", str(data), "-O", opt]
                )
                == 0
            )
        first, second = capsys.readouterr().out.split("scanned", 2)[1:]
        # identical match lines at every opt level (resource line differs)
        assert first.split("\n")[1:] == second.split("\n")[1:]


class TestCensusAndReport:
    def test_census(self, capsys):
        assert main(["census", "--suite", "Protomata", "--total", "20"]) == 0
        out = capsys.readouterr().out
        assert "Protomata: total 20" in out

    def test_report_table2(self, capsys):
        assert main(["report", "--which", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_report_fig8(self, capsys):
        assert main(["report", "--which", "fig8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
