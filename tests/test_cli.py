"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_unambiguous(self, capsys):
        assert main(["analyze", "^a{3}b"]) == 0
        out = capsys.readouterr().out
        assert "unambiguous" in out

    def test_ambiguous_with_witness(self, capsys):
        assert main(["analyze", ".*x{2}", "--method", "exact", "--witness"]) == 0
        out = capsys.readouterr().out
        assert "AMBIGUOUS" in out
        assert "witness=" in out

    def test_no_counting(self, capsys):
        assert main(["analyze", "abc"]) == 0
        assert "nothing to analyze" in capsys.readouterr().out


class TestCompile:
    def test_prints_resources_and_mnrl(self, capsys):
        assert main(["compile", "a(bc){2,4}d"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert '"type": "counter"' in out

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "out.mnrl.json"
        assert main(["compile", "a{2,9}", "-o", str(target)]) == 0
        assert target.exists()
        from repro.mnrl.serialize import load

        network = load(str(target))
        assert network.node_count() >= 1

    def test_threshold_flag(self, capsys):
        assert main(["compile", "a(bc){2,4}d", "--threshold", "inf"]) == 0
        out = capsys.readouterr().out
        assert "0 counters" in out


class TestScan:
    def test_scan_files(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text(
            "# comment line\n"
            "hit\tabc\n"
            "miss\tzzz{2,5}\n"
            "broken\t(a)\\1\n"
        )
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        assert main(["scan", "--rules", str(rules), "--input", str(data)]) == 0
        captured = capsys.readouterr()
        assert "hit: 1 match(es) at [5]" in captured.out
        assert "skipped broken" in captured.err

    def test_no_matches(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("r\tzzz\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"abc")
        main(["scan", "--rules", str(rules), "--input", str(data)])
        assert "no matches" in capsys.readouterr().out

    def test_scan_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        monkeypatch.setattr(
            "sys.stdin",
            type("S", (), {"buffer": io.BytesIO(b"xxabcxx")})(),
        )
        assert main(["scan", "--rules", str(rules), "--input", "-"]) == 0
        assert "hit: 1 match(es) at [5]" in capsys.readouterr().out

    def test_scan_small_chunks_match_whole(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tab{2,4}c\nend\tc$\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"zabbbc..abbc")
        for extra in ([], ["--chunk-size", "1"]):
            assert (
                main(["scan", "--rules", str(rules), "--input", str(data)] + extra)
                == 0
            )
        first, second = capsys.readouterr().out.split("scanned", 2)[1:]
        assert first == second

    def test_scan_reference_engine(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        args = ["scan", "--rules", str(rules), "--input", str(data)]
        assert main(args + ["--engine", "reference"]) == 0
        assert "hit: 1 match(es) at [5]" in capsys.readouterr().out

    def test_scan_sharded(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("a\tabc\nb\t[0-9]{3,5}\nc\tzz\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"abc 123 zz")
        assert (
            main(
                ["scan", "--rules", str(rules), "--input", str(data), "--shards", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "a: 1 match(es)" in out
        assert "b: 1 match(es)" in out
        assert "c: 1 match(es)" in out


class TestCensusAndReport:
    def test_census(self, capsys):
        assert main(["census", "--suite", "Protomata", "--total", "20"]) == 0
        out = capsys.readouterr().out
        assert "Protomata: total 20" in out

    def test_report_table2(self, capsys):
        assert main(["report", "--which", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_report_fig8(self, capsys):
        assert main(["report", "--which", "fig8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
