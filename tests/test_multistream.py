"""MultiStreamScanner: one compiled ruleset, N interleaved client streams.

Acceptance: >= 64 interleaved tagged streams served over one compiled
ruleset with per-stream match isolation, plus the hypothesis property
that any interleaving of N tagged streams produces exactly the matches
of scanning each stream alone -- on every registered backend.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.backends import available_backends
from repro.engine.parallel import ShardedMatcher
from repro.matching import RulesetMatcher
from repro.session import CollectorSink, Match, MultiStreamScanner, match_dict

RULES = [
    ("hit", r"abc"),
    ("num", r"[0-9]{3,5}"),
    ("tail", r"xyz$"),
    ("ctr", r"[^a]a{2,4}b"),
]


def usable_engines() -> list[str]:
    return [info.name for info in available_backends() if info.available]


class TestMultiStreamScanner:
    def test_per_stream_isolation(self):
        matcher = RulesetMatcher(RULES)
        mux = MultiStreamScanner(matcher)
        # split "abc" across stream a's chunks; interleave b between them
        mux.feed("a", b"za")
        mux.feed("b", b"12")
        mux.feed("a", b"bc")
        mux.feed("b", b"34...")
        results = mux.scan_tagged([])  # finish everything, collect
        assert results["a"].matches == {"hit": [4]}
        assert results["b"].matches == {"num": [3, 4]}

    def test_matches_tagged_with_their_stream(self):
        sink = CollectorSink()
        mux = MultiStreamScanner(RulesetMatcher(RULES), on_match=sink)
        mux.feed("left", b"abc")
        mux.feed("right", b"999")
        mux.finish_all()
        tags = {m.rule: m.stream for m in sink.matches}
        assert tags == {"hit": "left", "num": "right"}

    def test_streams_and_unknown_tag(self):
        mux = MultiStreamScanner(RulesetMatcher(RULES))
        mux.feed("s1", b"x")
        assert mux.streams == ["s1"]
        with pytest.raises(KeyError):
            mux.finish("nope")

    def test_finish_all_sorted_by_offset(self):
        mux = MultiStreamScanner(RulesetMatcher(RULES))
        mux.feed("b", b"..xyz")
        mux.feed("a", b"xyz")
        final = mux.finish_all()
        assert final == sorted(final, key=lambda m: m.sort_key)
        assert {(m.stream, m.end) for m in final} == {("a", 3), ("b", 5)}

    def test_result_finishes_single_stream(self):
        mux = MultiStreamScanner(RulesetMatcher(RULES))
        mux.feed("s", b"abc xyz")
        result = mux.result("s")
        assert result.matches == {"hit": [3], "tail": [7]}

    @pytest.mark.parametrize("shards", [0, 3])
    def test_serves_64_interleaved_streams(self, shards):
        """Acceptance: >= 64 interleaved tagged streams over one
        compiled ruleset (single and sharded), each isolated."""
        if shards:
            matcher = ShardedMatcher(RULES, shards=shards)
        else:
            matcher = RulesetMatcher(RULES)
        n = 64
        payloads = {
            f"client-{i}": b"ab" + b"c" * (i % 2) + str(i).encode() * 3 + b" xyz"
            for i in range(n)
        }
        mux = MultiStreamScanner(matcher)
        # round-robin byte-sized chunks: maximal interleaving
        offsets = {tag: 0 for tag in payloads}
        progressed = True
        while progressed:
            progressed = False
            for tag, payload in payloads.items():
                start = offsets[tag]
                if start < len(payload):
                    mux.feed(tag, payload[start : start + 3])
                    offsets[tag] = start + 3
                    progressed = True
        results = mux.scan_tagged([])
        assert len(results) == n
        for tag, payload in payloads.items():
            assert results[tag] == matcher.scan(payload), tag
        # tables were compiled once and shared by every session
        if not shards:
            scanner_tables = {
                id(s.tables)
                for session in mux._sessions.values()
                for s in session.scanners
            }
            assert scanner_tables == {id(matcher.tables)}


class TestInterleavingProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        payloads=st.lists(
            st.binary(max_size=24).map(
                lambda raw: bytes(b"abcxyz 123"[b % 10] for b in raw)
            ),
            min_size=1,
            max_size=5,
        ),
        chunk_sizes=st.lists(
            st.integers(min_value=1, max_value=7), min_size=1, max_size=8
        ),
        data=st.data(),
    )
    def test_interleaved_equals_isolated(self, payloads, chunk_sizes, data):
        """Property: N tagged streams scanned interleaved produce
        identical Match sets to scanning each stream alone, across all
        registered backends."""
        for engine in usable_engines():
            matcher = _matcher_for(engine)
            # cut each payload into chunks, then interleave by a
            # hypothesis-chosen schedule
            pending = {
                f"s{i}": _cut(payload, chunk_sizes)
                for i, payload in enumerate(payloads)
            }
            mux = MultiStreamScanner(matcher, engine=engine)
            live = [tag for tag, chunks in pending.items() if chunks]
            while live:
                index = data.draw(
                    st.integers(min_value=0, max_value=len(live) - 1)
                )
                tag = live[index]
                mux.feed(tag, pending[tag].pop(0))
                if not pending[tag]:
                    live.remove(tag)
            for tag in pending:
                mux.session(tag)  # make empty streams exist too
            results = mux.results()
            for i, payload in enumerate(payloads):
                tag = f"s{i}"
                alone = matcher.scan(payload, engine=engine)
                assert results[tag].matches == alone.matches, (engine, tag)


_MATCHERS: dict = {}


def _matcher_for(engine: str) -> RulesetMatcher:
    matcher = _MATCHERS.get(engine)
    if matcher is None:
        matcher = RulesetMatcher(RULES, engine=engine)
        _MATCHERS[engine] = matcher
    return matcher


def _cut(payload: bytes, sizes: list[int]) -> list[bytes]:
    chunks = []
    offset = 0
    i = 0
    while offset < len(payload):
        size = sizes[i % len(sizes)]
        chunks.append(payload[offset : offset + size])
        offset += size
        i += 1
    return chunks
