"""Tests for the high-level RulesetMatcher facade."""

import pytest

from repro.matching import RulesetMatcher, UNNAMED_REPORT


RULES = [
    ("header", r"\n[^\r\n]{8,40}\n"),
    ("digits", r"[0-9]{6,12}"),
    ("exact", r"abc"),
    ("broken", r"(a)\1"),
]


class TestScan:
    def test_matched_rules(self):
        matcher = RulesetMatcher(RULES)
        result = matcher.scan(b"xx abc yy 123456789 zz")
        assert "exact" in result.matches
        assert "digits" in result.matches
        assert "header" not in result.matches

    def test_match_positions_one_based_ends(self):
        matcher = RulesetMatcher([("r", "abc")])
        result = matcher.scan(b"..abc..abc")
        assert result.matches["r"] == [5, 10]

    def test_str_input(self):
        matcher = RulesetMatcher([("r", "abc")])
        assert matcher.matched_rules("zzabczz") == {"r"}

    def test_energy_estimate_present(self):
        matcher = RulesetMatcher(RULES)
        result = matcher.scan(b"hello world" * 20)
        assert result.energy_nj_per_byte > 0
        assert result.bytes_scanned == 220

    def test_total_matches(self):
        matcher = RulesetMatcher([("r", "a")])
        assert matcher.scan(b"aaa").total_matches() == 3


class TestEngines:
    def test_engines_agree(self):
        matcher = RulesetMatcher(RULES)
        data = b"head\nvalue-of-header-x\n 123456789 abcabc"
        assert matcher.scan(data, engine="table") == matcher.scan(
            data, engine="reference"
        )

    def test_default_engine_ctor_arg(self):
        matcher = RulesetMatcher([("r", "abc")], engine="reference")
        assert matcher.scan(b"xabc").matches == {"r": [4]}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            RulesetMatcher([("r", "abc")], engine="quantum")
        with pytest.raises(ValueError):
            RulesetMatcher([("r", "abc")]).scan(b"x", engine="quantum")

    def test_scan_stream_matches_scan(self):
        matcher = RulesetMatcher(RULES)
        data = b"head\nvalue-of-header-x\n 123456789 abcabc"
        assert matcher.scan_stream([data[:10], data[10:]]) == matcher.scan(data)

    def test_scan_many(self):
        matcher = RulesetMatcher(RULES)
        streams = [b"abc", b"123456", b"nothing"]
        assert matcher.scan_many(streams) == [matcher.scan(s) for s in streams]

    def test_tables_cached(self):
        matcher = RulesetMatcher([("r", "abc")])
        assert matcher.tables is matcher.tables


class TestReportNaming:
    def test_empty_string_rule_id_preserved(self):
        # the old `rule_id or "?"` fallback silently renamed falsy-but-
        # real ids; "" must survive as its own deterministic key
        matcher = RulesetMatcher([("", "abc")])
        assert matcher.scan(b"xabc").matches == {"": [4]}

    def test_unnamed_sentinel_is_stable(self):
        assert UNNAMED_REPORT == "<unnamed>"


class TestResources:
    def test_summary_fields(self):
        matcher = RulesetMatcher(RULES)
        res = matcher.resources()
        assert res.rules_compiled == 3
        assert res.rules_skipped == 1
        assert res.stes > 0
        assert res.counters >= 1  # the guarded header run
        assert res.bit_vectors >= 1  # the bare digit run
        assert res.area_mm2 > 0

    def test_skipped_reasons(self):
        matcher = RulesetMatcher(RULES)
        assert matcher.skipped[0][0] == "broken"
        assert "unsupported" in matcher.skipped[0][1]

    def test_threshold_changes_footprint(self):
        small = RulesetMatcher(RULES, unfold_threshold=0).resources()
        full = RulesetMatcher(RULES, unfold_threshold=float("inf")).resources()
        assert full.stes > small.stes
        assert full.counters == 0 and full.bit_vectors == 0

    def test_empty_match_rules_flagged(self):
        matcher = RulesetMatcher([("opt", "a*"), ("lit", "b")])
        assert matcher.empty_match_rules() == {"opt"}


class TestEquivalenceAcrossThresholds:
    def test_same_matches_any_threshold(self):
        data = b"head\nvalue-of-header-x\n 123456789 abcabc"
        results = [
            RulesetMatcher(RULES, unfold_threshold=t).scan(data).matches
            for t in (0, 10, float("inf"))
        ]
        assert results[0] == results[1] == results[2]
