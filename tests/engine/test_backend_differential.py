"""Differential fuzz: every registered backend, one semantics.

Hypothesis drives random rule subsets x random data x random
chunkings through **all registered, available backends** and asserts
identical distinct report sets everywhere, plus
``ActivityStats.equivalent`` wherever the backend declares
``stats_exact`` (all built-ins do).  The reference backend runs inside
the same loop, so any divergence names the offending backend directly.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_ruleset
from repro.engine.backends import available_backends, get_backend
from repro.engine.tables import compile_tables

#: shapes chosen to exercise every execution path: literal chains,
#: alternation, anchors, nullables, self-loops, true cycles (scalar
#: fallback), counters, and bit vectors (module rescans)
RULE_POOL = [
    ("lit", r"abc"),
    ("start", r"^ab"),
    ("end", r"bc$"),
    ("nullable", r"c*"),
    ("counter", r"[^a]a{3,5}"),
    ("gap", r"b.{2,4}c"),
    ("selfloop", r"xa+b"),
    ("cycle", r"(ab)+c"),
    ("alt", r"(ax|bx|cx)"),
    ("exact", r"^[abc]{4}$"),
]

_TABLES_CACHE: dict = {}


def _tables_for(indices: frozenset):
    tables = _TABLES_CACHE.get(indices)
    if tables is None:
        rules = [RULE_POOL[i] for i in sorted(indices)]
        tables = compile_tables(compile_ruleset(rules).network)
        _TABLES_CACHE[indices] = tables
    return tables


def _chunkings(data: bytes, cuts: list[int]) -> list[bytes]:
    points = sorted({min(c, len(data)) for c in cuts})
    chunks, prev = [], 0
    for point in points:
        chunks.append(data[prev:point])
        prev = point
    chunks.append(data[prev:])
    return chunks


small_data = st.lists(st.sampled_from(list(b"abcx")), max_size=40).map(bytes)
rule_subsets = st.frozensets(
    st.integers(min_value=0, max_value=len(RULE_POOL) - 1), min_size=1, max_size=4
)


@given(
    indices=rule_subsets,
    data=small_data,
    cuts=st.lists(st.integers(min_value=0, max_value=40), max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_all_backends_report_identically(indices, data, cuts):
    tables = _tables_for(indices)
    chunks = _chunkings(data, cuts)
    outcomes = {}
    for info in available_backends():
        if not info.available:
            continue
        scanner = get_backend(info.name).make_scanner(tables)
        for chunk in chunks:
            scanner.feed(chunk)
        outcomes[info.name] = (info, scanner.finish(), scanner.stats)

    assert "stream" in outcomes and "reference" in outcomes
    _, want_reports, want_stats = outcomes["reference"]
    for name, (info, reports, stats) in outcomes.items():
        assert reports == want_reports, (name, sorted(indices), data, cuts)
        if info.stats_exact:
            assert stats.equivalent(want_stats), (name, sorted(indices), data, cuts)


@given(data=small_data)
@settings(max_examples=30, deadline=None)
def test_byte_at_a_time_matches_one_shot_on_every_backend(data):
    tables = _tables_for(frozenset([0, 4, 6, 9]))
    for info in available_backends():
        if not info.available:
            continue
        backend = get_backend(info.name)
        drip = backend.make_scanner(tables)
        for b in data:
            drip.feed(bytes([b]))
        one = backend.make_scanner(tables)
        one.feed(data)
        assert drip.finish() == one.finish(), info.name
        assert drip.stats.equivalent(one.stats), info.name
