"""Differential fuzz: every registered backend, one semantics.

Hypothesis drives random rule subsets x random data x random
chunkings through **all registered, available backends** and asserts
identical distinct report sets everywhere, plus
``ActivityStats.equivalent`` wherever the backend declares
``stats_exact`` (all built-ins do).  The reference backend runs inside
the same loop, so any divergence names the offending backend directly.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_ruleset
from repro.engine.backends import available_backends, get_backend
from repro.engine.tables import compile_tables

#: shapes chosen to exercise every execution path: literal chains,
#: alternation, anchors, nullables, self-loops, true cycles (scalar
#: fallback), counters, and bit vectors (module rescans)
RULE_POOL = [
    ("lit", r"abc"),
    ("start", r"^ab"),
    ("end", r"bc$"),
    ("nullable", r"c*"),
    ("counter", r"[^a]a{3,5}"),
    ("gap", r"b.{2,4}c"),
    ("selfloop", r"xa+b"),
    ("cycle", r"(ab)+c"),
    ("alt", r"(ax|bx|cx)"),
    ("exact", r"^[abc]{4}$"),
]

_TABLES_CACHE: dict = {}


def _tables_for(indices: frozenset):
    tables = _TABLES_CACHE.get(indices)
    if tables is None:
        rules = [RULE_POOL[i] for i in sorted(indices)]
        tables = compile_tables(compile_ruleset(rules).network)
        _TABLES_CACHE[indices] = tables
    return tables


def _chunkings(data: bytes, cuts: list[int]) -> list[bytes]:
    points = sorted({min(c, len(data)) for c in cuts})
    chunks, prev = [], 0
    for point in points:
        chunks.append(data[prev:point])
        prev = point
    chunks.append(data[prev:])
    return chunks


small_data = st.lists(st.sampled_from(list(b"abcx")), max_size=40).map(bytes)
rule_subsets = st.frozensets(
    st.integers(min_value=0, max_value=len(RULE_POOL) - 1), min_size=1, max_size=4
)


def _assert_backends_agree(tables, chunks, context):
    """Feed ``chunks`` through every available backend; reports must be
    identical everywhere and stats equivalent wherever declared exact."""
    outcomes = {}
    for info in available_backends():
        if not info.available:
            continue
        scanner = get_backend(info.name).make_scanner(tables)
        for chunk in chunks:
            scanner.feed(chunk)
        outcomes[info.name] = (info, scanner.finish(), scanner.stats)

    assert "stream" in outcomes and "reference" in outcomes
    _, want_reports, want_stats = outcomes["reference"]
    for name, (info, reports, stats) in outcomes.items():
        assert reports == want_reports, (name,) + context
        if info.stats_exact:
            assert stats.equivalent(want_stats), (name,) + context


@given(
    indices=rule_subsets,
    data=small_data,
    cuts=st.lists(st.integers(min_value=0, max_value=40), max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_all_backends_report_identically(indices, data, cuts):
    tables = _tables_for(indices)
    chunks = _chunkings(data, cuts)
    _assert_backends_agree(tables, chunks, (sorted(indices), data, cuts))


# -- module-heavy generator -------------------------------------------------
#
# Random `{n,m}` bounded repeats lower to counter and bit-vector
# modules (unfold_threshold=0 in compile_ruleset keeps them as
# modules); the generator covers every wiring shape the block scanner
# distinguishes: absorbable one-STE loops, ALL_INPUT gaps, nested
# counters, multi-STE bodies (the non-vectorizable fallback), and
# plain STE context around them.


@st.composite
def _module_rule(draw, tag):
    lo = draw(st.integers(min_value=1, max_value=4))
    # hi > lo >= 1, or an exact repeat with lo >= 2: `a{1,1}` would
    # simplify to a plain STE and leave the tables module-free
    hi = lo + draw(st.integers(min_value=1, max_value=4))
    if draw(st.booleans()) and lo >= 2:
        hi = lo
    shape = draw(
        st.sampled_from(
            [
                "{head}a{{{lo},{hi}}}",  # counter run (absorbable)
                "b.{{{lo},{hi}}}c",  # bit-vector gap
                ".{{{lo},{hi}}}x",  # ALL_INPUT bit vector
                "[ab]{{{lo},{hi}}}x",  # class-run counter
                "(a{{{lo},{hi}}})+b",  # nested counting
                "x(ab){{{lo},{hi}}}c",  # multi-STE body (fallback)
                "{head}a{{{lo},{hi}}}b{{{lo},{hi}}}",  # chained modules
            ]
        )
    )
    head = draw(st.sampled_from(["x", "[^a]", "c"]))
    return (tag, shape.format(head=head, lo=lo, hi=hi))


module_rule_lists = st.integers(min_value=1, max_value=3).flatmap(
    lambda k: st.tuples(*[_module_rule(tag=f"m{i}") for i in range(k)])
)

_MODULE_TABLES_CACHE: dict = {}


def _module_tables_for(rules: tuple):
    tables = _MODULE_TABLES_CACHE.get(rules)
    if tables is None:
        tables = compile_tables(compile_ruleset(list(rules)).network)
        _MODULE_TABLES_CACHE[rules] = tables
    return tables


@given(
    rules=module_rule_lists,
    data=st.lists(st.sampled_from(list(b"aabbcx.")), max_size=60).map(bytes),
    cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=5),
)
@settings(max_examples=80, deadline=None)
def test_all_backends_agree_on_module_heavy_rules(rules, data, cuts):
    tables = _module_tables_for(rules)
    assert tables.n_modules > 0, rules
    chunks = _chunkings(data, cuts)
    _assert_backends_agree(tables, chunks, (rules, data, cuts))


@given(data=small_data)
@settings(max_examples=30, deadline=None)
def test_byte_at_a_time_matches_one_shot_on_every_backend(data):
    tables = _tables_for(frozenset([0, 4, 6, 9]))
    for info in available_backends():
        if not info.available:
            continue
        backend = get_backend(info.name)
        drip = backend.make_scanner(tables)
        for b in data:
            drip.feed(bytes([b]))
        one = backend.make_scanner(tables)
        one.feed(data)
        assert drip.finish() == one.finish(), info.name
        assert drip.stats.equivalent(one.stats), info.name
