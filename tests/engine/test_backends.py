"""The pluggable execution-backend subsystem.

Covers the registry (names, aliases, auto selection, the single
unknown-engine error, graceful degradation without NumPy) and the
``"block"`` backend's equivalence contract: identical distinct reports
*and* ActivityStats against the reference simulator on every pattern
shape, chunking, and all five synthetic suites.
"""

import pytest

import repro.engine.block as block_engine
from repro.compiler.pipeline import compile_pattern, compile_ruleset
from repro.engine.backends import (
    Backend,
    BackendUnavailable,
    available_backends,
    backend_names,
    engine_choices,
    get_backend,
    register_backend,
    resolve_backend,
    validated_backend_names,
)
from repro.engine.backends.registry import _ALIASES, _BACKENDS
from repro.engine.block import BlockScanner
from repro.engine.scanner import StreamScanner
from repro.engine.tables import compile_tables
from repro.hardware.simulator import NetworkSimulator
from repro.matching import RulesetMatcher
from repro.workloads.inputs import plant_matches, stream_for_style
from repro.workloads.synth import (
    clamav_like,
    protomata_like,
    snort_like,
    spamassassin_like,
    suricata_like,
)

MODULE_FREE_RULES = [("lit", r"abc"), ("alt", r"(cat|dog)"), ("cls", r"x[yz]w")]

#: the block backend is optional; everything else must pass without it
needs_numpy = pytest.mark.skipif(
    block_engine.numpy_or_none() is None,
    reason="numpy not installed (block backend unavailable)",
)


def _tables(pattern):
    return compile_tables(compile_pattern(pattern, report_id="p").network)


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        assert names[:3] == ["stream", "block", "reference"]

    def test_aliases_resolve(self):
        assert get_backend("table") is get_backend("stream")

    def test_engine_choices_cover_auto_names_aliases(self):
        choices = engine_choices()
        assert choices[0] == "auto"
        for name in ("stream", "block", "reference", "table"):
            assert name in choices

    def test_unknown_name_error_lists_engines(self):
        with pytest.raises(ValueError, match="available engines: auto, stream"):
            get_backend("quantum")
        with pytest.raises(ValueError, match="available engines"):
            resolve_backend("quantum")

    def test_auto_is_not_a_backend(self):
        with pytest.raises(ValueError, match="unknown engine 'auto'"):
            get_backend("auto")

    def test_register_conflict_rejected(self):
        class Dup(Backend):
            name = "stream"

            def make_scanner(self, tables):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Dup())

    def test_register_and_replace_custom_backend(self):
        class Custom(Backend):
            name = "custom-test"
            aliases = ("custom-alias",)
            description = "test double"

            def make_scanner(self, tables):
                return StreamScanner(tables)

        try:
            register_backend(Custom())
            assert get_backend("custom-alias").name == "custom-test"
            register_backend(Custom(), replace=True)  # idempotent override
            tables = _tables("ab")
            scanner = resolve_backend("custom-test", tables).make_scanner(tables)
            assert scanner.scan(b"xab") == {(3, "p")}
        finally:
            _BACKENDS.pop("custom-test", None)
            _ALIASES.pop("custom-alias", None)

    @needs_numpy
    def test_auto_picks_block_for_module_free(self):
        tables = RulesetMatcher(MODULE_FREE_RULES).tables
        assert resolve_backend("auto", tables).name == "block"

    @needs_numpy
    def test_auto_picks_block_for_vectorizable_modules(self):
        # bounded repeats compile to counter/bit-vector modules that
        # now run inside the vector sweep, so auto prefers block
        tables = RulesetMatcher([("ctr", r"[^a]a{3,9}")]).tables
        assert tables.n_modules > 0
        assert resolve_backend("auto", tables).name == "block"

    def test_auto_picks_stream_for_cyclic_module_wiring(self):
        # a multi-STE counter body defeats in-sweep module execution;
        # the optimistic-sweep path risks rescans, so stream wins auto
        tables = RulesetMatcher([("loop", r"x(ab){2,3}y")]).tables
        assert tables.n_modules > 0
        assert resolve_backend("auto", tables).name == "stream"

    def test_auto_picks_stream_for_cyclic_ste_graph(self):
        tables = _tables(r"(ab)+c")
        assert tables.n_modules == 0
        assert resolve_backend("auto", tables).name == "stream"

    def test_auto_never_picks_reference(self):
        for rules in (MODULE_FREE_RULES, [("ctr", r"[^a]a{3,9}")]):
            assert resolve_backend("auto", RulesetMatcher(rules).tables).name != "reference"

    def test_validated_backend_names(self):
        tables = _tables("abc")
        names = validated_backend_names(tables)
        assert "stream" in names and "reference" in names
        tables.network = None
        assert "reference" not in validated_backend_names(tables)


class TestNumpyDegradation:
    """The block backend must degrade, not explode, without NumPy."""

    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(block_engine, "_np", None)
        monkeypatch.setattr(block_engine, "_NUMPY_ERROR", "simulated import failure")

    def test_reported_unavailable_with_reason(self, no_numpy):
        info = {i.name: i for i in available_backends()}["block"]
        assert not info.available
        assert "simulated import failure" in info.unavailable_reason

    def test_explicit_block_raises_value_error(self, no_numpy):
        tables = _tables("abc")
        with pytest.raises(BackendUnavailable, match="simulated import failure"):
            resolve_backend("block", tables)
        assert issubclass(BackendUnavailable, ValueError)

    def test_auto_degrades_to_stream(self, no_numpy):
        tables = _tables("abc")
        assert resolve_backend("auto", tables).name == "stream"

    def test_module_rules_degrade_to_stream(self, no_numpy):
        """Counter/bit-vector rules prefer block when numpy exists;
        without it they must quietly serve on the interpreter."""
        matcher = RulesetMatcher([("ctr", r"[^a]a{3,9}"), ("gap", r"b.{2,4}c")])
        assert matcher.tables.n_modules > 0
        assert resolve_backend("auto", matcher.tables).name == "stream"
        result = matcher.scan(b"xaaaa b12c")
        assert set(result.matched_rules()) == {"ctr", "gap"}

    def test_scanner_constructor_raises(self, no_numpy):
        with pytest.raises(RuntimeError, match="requires numpy"):
            BlockScanner(_tables("abc"))

    def test_matcher_scan_still_works(self, no_numpy):
        matcher = RulesetMatcher(MODULE_FREE_RULES)  # engine="auto"
        assert matcher.scan(b"zabcz").matches == {"lit": [4]}
        assert "block" not in matcher.validated_backends

    def test_matcher_ctor_fails_fast_on_unavailable_engine(self, no_numpy):
        """engine='block' without numpy must raise before the compile,
        not after seconds of wasted work at scan time."""
        with pytest.raises(BackendUnavailable, match="simulated import failure"):
            RulesetMatcher(MODULE_FREE_RULES, engine="block")

    def test_cli_scan_reports_clean_error(self, no_numpy, tmp_path, capsys):
        from repro.cli import main

        rules = tmp_path / "rules.txt"
        rules.write_text("hit\tabc\n")
        data = tmp_path / "data.bin"
        data.write_bytes(b"xxabcxx")
        code = main(
            ["scan", "--rules", str(rules), "--input", str(data), "--engine", "block"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "unavailable" in err


class TestReferenceBackend:
    def test_streams_chunk_by_chunk(self):
        tables = _tables(r"ab{2,4}c")
        scanner = resolve_backend("reference", tables).make_scanner(tables)
        new = []
        for chunk in (b"xab", b"bc", b"abbbbc"):
            new.extend(scanner.feed(chunk))
        assert scanner.finish() == StreamScanner(tables).scan(b"xabbcabbbbc")
        assert set(new) == scanner.reports
        assert scanner.bytes_fed == 11

    def test_requires_source_network(self):
        tables = _tables("ab")
        tables.network = None
        assert not get_backend("reference").applicable(tables)
        with pytest.raises(BackendUnavailable, match="cannot execute"):
            resolve_backend("reference", tables)

    def test_feed_after_finish_raises(self):
        tables = _tables("ab")
        scanner = resolve_backend("reference", tables).make_scanner(tables)
        scanner.feed(b"ab")
        scanner.finish()
        with pytest.raises(RuntimeError):
            scanner.feed(b"x")


#: pattern shapes covering every vectorization path: plain chains,
#: branching, anchors, self-loops (+/*), true cycles (group
#: repetition -> scalar fallback), counters and bit vectors (module
#: rescan path), and nullable rules.
BLOCK_PATTERNS = [
    r"abc",
    r"(cat|dog|bird)",
    r"^GET /[a-z]{1,8}",
    r"end$",
    r"^whole$",
    r"a*b?",
    r"xa+y",
    r"xa*y",
    r"(a|b)+x",
    r"(ab)+c",
    r"x(ab)*y",
    r"x[0-9]{3,6}y",
    r"\n[^\r\n]{4,12}\n",
    r".{2,5}stop",
    r"a.{3,9}b",
    r"(ab){2,4}c",
    r"a{4}",
]

BLOCK_INPUTS = [
    b"",
    b"a",
    b"abc",
    b"whole",
    b"GET /index HTTP\r\nabc x12345y end",
    b"aaaaaaaabbbbbbb",
    b"\nline-one\n\nline-two-is-long\n",
    b"zzzstopzz abab ababc xaay xy xababy",
    bytes(range(256)),
    b"a" * 40 + b"b" + b"a" * 40,
]


def _reference(network, data):
    sim = NetworkSimulator(network)
    sim.run(data)
    return sim.distinct_reports(), sim.stats


@needs_numpy
class TestBlockScannerEquivalence:
    @pytest.mark.parametrize("pattern", BLOCK_PATTERNS)
    def test_single_pattern_reports_and_stats(self, pattern):
        compiled = compile_pattern(pattern, report_id="p")
        tables = compile_tables(compiled.network)
        scanner = BlockScanner(tables)
        for data in BLOCK_INPUTS:
            want_reports, want_stats = _reference(compiled.network, data)
            scanner.reset()
            scanner.feed(data)
            assert scanner.finish() == want_reports, (pattern, data)
            assert scanner.stats.equivalent(want_stats), (pattern, data)

    @pytest.mark.parametrize("block_size", [2, 3, 7, 64])
    def test_tiny_blocks_cross_boundaries(self, block_size):
        """Vector state (enable carry, self-loop runs) must survive
        arbitrary block boundaries, including blocks of 2 bytes."""
        ruleset = compile_ruleset(
            [("r%d" % i, p) for i, p in enumerate(BLOCK_PATTERNS)]
        )
        data = b" ".join(BLOCK_INPUTS)
        want_reports, want_stats = _reference(ruleset.network, data)
        tables = compile_tables(ruleset.network)
        scanner = BlockScanner(tables, block_size=block_size)
        scanner.feed(data)
        assert scanner.finish() == want_reports
        assert scanner.stats.equivalent(want_stats)

    def test_chunked_feed_equals_one_shot(self):
        tables = compile_tables(
            compile_ruleset([("a", r"ab[cd]{2,6}e"), ("b", r"xa+y")]).network
        )
        data = b"xaaay abccde abdddde xy " * 40
        one = BlockScanner(tables)
        one.feed(data)
        chunked = BlockScanner(tables, block_size=32)
        new = []
        for offset in range(0, len(data), 13):
            new.extend(chunked.feed(data[offset : offset + 13]))
        assert chunked.finish() == one.finish()
        assert set(new) == chunked.reports
        assert chunked.stats.equivalent(one.stats)

    def test_feed_returns_new_reports_in_position_order(self):
        tables = _tables("ab")
        scanner = BlockScanner(tables)
        new = scanner.feed(b"ab ab ab")
        assert new == [(2, "p"), (5, "p"), (8, "p")]
        assert scanner.feed(b" ab") == [(11, "p")]

    def test_feed_after_finish_raises(self):
        scanner = BlockScanner(_tables("ab"))
        scanner.feed(b"ab")
        scanner.finish()
        with pytest.raises(RuntimeError):
            scanner.feed(b"ab")
        scanner.reset()
        assert scanner.scan(b"xab") == {(3, "p")}

    def test_vectorizable_modules_run_in_sweep_without_rescans(self):
        """Bounded repeats with one-STE bodies execute inside the
        sweep: every block commits, the scalar replay path never runs."""
        compiled = compile_pattern(r"[^a]a{3,9}", report_id="p")
        tables = compile_tables(compiled.network)
        data = b"xaaaa baaab zaaaaaaaaaz " * 200
        want_reports, want_stats = _reference(compiled.network, data)
        scanner = BlockScanner(tables, block_size=16)
        scanner.feed(data)
        assert scanner.finish() == want_reports
        assert scanner.stats.equivalent(want_stats)
        sweep = scanner.sweep_stats
        assert sweep.modules_vectorized
        assert sweep.rescans == 0
        assert not sweep.sweeps_disabled
        assert sweep.committed_blocks == -(-len(data) // 16)

    def test_module_rescan_limit_degrades_to_scalar(self):
        """Module wiring the sweep cannot absorb (multi-STE counter
        body): on module-dense input the scanner must stop paying for
        doomed vector sweeps but stay exactly equivalent."""
        compiled = compile_pattern(r"x(ab){2,3}y", report_id="p")
        tables = compile_tables(compiled.network)
        data = b"xababy xabababy zz " * 200
        want_reports, want_stats = _reference(compiled.network, data)
        scanner = BlockScanner(tables, block_size=16)
        scanner.feed(data)
        assert scanner.finish() == want_reports
        assert scanner.stats.equivalent(want_stats)
        sweep = scanner.sweep_stats
        assert not sweep.modules_vectorized
        assert sweep.rescans >= 1  # the fallback actually engaged
        # ...and a streak of fruitless sweeps shut vectorization off
        assert sweep.sweeps_disabled
        scanner.reset()
        assert not scanner.sweep_stats.sweeps_disabled

    @pytest.mark.parametrize(
        "factory, total",
        [
            (snort_like, 14),
            (suricata_like, 12),
            (protomata_like, 10),
            (spamassassin_like, 12),
            (clamav_like, 10),
        ],
    )
    def test_synthetic_suite_equivalence(self, factory, total):
        """Acceptance: block == reference on all five synthetic suites,
        both with modules (threshold 0) and STE-only (unfolded)."""
        suite = factory(total=total, seed=11)
        background = stream_for_style(suite.input_style, 4000, seed=2)
        data = plant_matches(background, [r.pattern for r in suite.rules], seed=3)
        for threshold in (0, float("inf")):
            ruleset = compile_ruleset(suite.patterns(), unfold_threshold=threshold)
            want_reports, want_stats = _reference(ruleset.network, data)
            scanner = BlockScanner(compile_tables(ruleset.network))
            scanner.feed(data)
            assert scanner.finish() == want_reports
            assert scanner.stats.equivalent(want_stats)

    def test_program_shared_across_scanners(self):
        tables = _tables("abc")
        assert BlockScanner(tables)._program is BlockScanner(tables)._program


class TestFacadeEngineSelection:
    def test_engine_kwarg_equivalence_all_names(self):
        matcher = RulesetMatcher(
            [("lit", r"abc"), ("ctr", r"[^a]a{3,5}"), ("end", r"bc$")]
        )
        data = b"zabc xaaaa abcbc"
        want = matcher.scan(data, engine="reference")
        engines = ["auto", "stream", "table"]
        if block_engine.numpy_or_none() is not None:
            engines.append("block")
        for engine in engines:
            got = matcher.scan(data, engine=engine)
            assert got == want, engine

    def test_scan_stream_honors_reference_engine(self):
        matcher = RulesetMatcher([("lit", r"abc")], engine="reference")
        assert matcher.scan_stream([b"ab", b"c"]).matches == {"lit": [3]}
        # the session wraps a scanner from the matcher's default backend
        assert type(matcher.session().scanners[0]).__name__ == "ReferenceScanner"

    def test_stream_scanner_deprecated_but_working(self):
        matcher = RulesetMatcher([("lit", r"abc")], engine="reference")
        with pytest.deprecated_call():
            scanner = matcher.stream_scanner()
        assert type(scanner).__name__ == "ReferenceScanner"

    def test_scan_many_ships_engine_choice(self):
        matcher = RulesetMatcher(MODULE_FREE_RULES)
        streams = [b"zabcz", b"no", b"xyw cat"]
        engines = ["stream", "reference"]
        if block_engine.numpy_or_none() is not None:
            engines.append("block")
        for engine in engines:
            assert matcher.scan_many(streams, engine=engine) == [
                matcher.scan(s) for s in streams
            ]

    def test_validated_backends_recorded_in_cache(self, tmp_path):
        rules = [("lit", r"abc")]
        cold = RulesetMatcher(rules, cache_dir=str(tmp_path))
        warm = RulesetMatcher(rules, cache_dir=str(tmp_path))
        assert warm.compile_info.cache_hit
        assert warm.validated_backends == cold.validated_backends
        assert "stream" in warm.validated_backends
