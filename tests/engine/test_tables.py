"""Equivalence of the table-driven engine against the reference simulator.

The engine's contract (docs/ARCHITECTURE.md): for every network the
compiler can emit, the distinct ``(position, report_id)`` report sets
AND the full ``ActivityStats`` must match ``NetworkSimulator`` exactly.
"""

import pytest

from repro.compiler.pipeline import compile_pattern, compile_ruleset
from repro.engine.scanner import StreamScanner, scan_bytes
from repro.engine.tables import compile_tables
from repro.hardware.simulator import NetworkSimulator
from repro.workloads.inputs import plant_matches, stream_for_style
from repro.workloads.synth import (
    clamav_like,
    protomata_like,
    snort_like,
    spamassassin_like,
    suricata_like,
)

#: pattern shapes covering every node type and start behaviour:
#: plain literals, alternation, anchors, nullable, counters (guarded
#: runs), bit vectors (wildcard gaps), nested repetition, classes.
PATTERNS = [
    r"abc",
    r"(cat|dog|bird)",
    r"^GET /[a-z]{1,8}",
    r"end$",
    r"^whole$",
    r"a*b?",
    r"[^\r\n]\r?\n",
    r"x[0-9]{3,6}y",
    r"\n[^\r\n]{4,12}\n",
    r".{2,5}stop",
    r"a.{3,9}b",
    r"(ab){2,4}c",
    r"([a-c]{1,2}z){1,3}",
    r"a{4}",
    r"[0-9a-f]{8,16}",
]

INPUTS = [
    b"",
    b"a",
    b"abc",
    b"whole",
    b"GET /index HTTP\r\nabc x12345y end",
    b"aaaaaaaabbbbbbb",
    b"\nline-one\n\nline-two-is-long\n",
    b"zzzstopzz abab ababc acz bzbz",
    b"deadbeefcafebabe 0123456789",
    bytes(range(256)),
    b"a" * 40 + b"b" + b"a" * 40,
]


def _reference(network, data):
    sim = NetworkSimulator(network)
    sim.run(data)
    return sim.distinct_reports(), sim.stats


@pytest.mark.parametrize("pattern", PATTERNS)
def test_single_pattern_equivalence(pattern):
    compiled = compile_pattern(pattern, report_id="p")
    tables = compile_tables(compiled.network)
    scanner = StreamScanner(tables)
    for data in INPUTS:
        want_reports, want_stats = _reference(compiled.network, data)
        scanner.reset()
        scanner.feed(data)
        assert scanner.finish() == want_reports, (pattern, data)
        assert scanner.stats.equivalent(want_stats), (pattern, data)


@pytest.mark.parametrize("threshold", [0, 3, float("inf")])
def test_whole_ruleset_equivalence_across_thresholds(threshold):
    ruleset = compile_ruleset(
        [("r%d" % i, p) for i, p in enumerate(PATTERNS)],
        unfold_threshold=threshold,
    )
    data = b" ".join(INPUTS)
    want_reports, want_stats = _reference(ruleset.network, data)
    scanner = scan_bytes(ruleset.network, data)
    assert scanner.reports == want_reports
    assert scanner.stats.equivalent(want_stats)


@pytest.mark.parametrize(
    "factory, total",
    [
        (snort_like, 14),
        (suricata_like, 12),
        (protomata_like, 10),
        (spamassassin_like, 12),
        (clamav_like, 10),
    ],
)
def test_synthetic_suite_equivalence(factory, total):
    """Report- and stats-equivalence across the synthetic workload
    suites, on matching traffic with planted true matches."""
    suite = factory(total=total, seed=11)
    ruleset = compile_ruleset(suite.patterns())
    background = stream_for_style(suite.input_style, 4000, seed=2)
    data = plant_matches(background, [r.pattern for r in suite.rules], seed=3)
    want_reports, want_stats = _reference(ruleset.network, data)
    scanner = scan_bytes(ruleset.network, data)
    assert scanner.reports == want_reports
    assert scanner.stats.equivalent(want_stats)
    assert want_stats.reports > 0  # planted matches actually fired


def test_tables_are_picklable():
    import pickle

    compiled = compile_pattern(r"a[^b]{2,6}b(c|d){1,3}$", report_id="p")
    tables = compile_tables(compiled.network)
    clone = pickle.loads(pickle.dumps(tables))
    data = b"axxxbccd axyzzzbd"
    assert scan_bytes(clone, data).reports == scan_bytes(tables, data).reports


def test_match_masks_cover_symbol_sets():
    compiled = compile_pattern(r"[a-f]{2,4}[^a-f]", report_id="p")
    tables = compile_tables(compiled.network)
    # the alphabet collapses to the classes the STEs distinguish:
    # [a-f] vs [^a-f] -> 2 classes, indexed through the 256-byte map
    assert len(tables.byte_class) == 256
    assert tables.n_classes == 2
    assert len(tables.match_masks) == tables.n_classes
    for i, ste in enumerate(compiled.network.stes()):
        assert ste.id == tables.ste_ids[i]
        for byte in range(256):
            expected = byte in ste.symbol_set
            assert bool(tables.match_mask_for(byte) >> i & 1) == expected


def test_alphabet_class_map_is_consistent():
    """Bytes in one class are matched by exactly the same STEs."""
    compiled = compile_pattern(r"(GET|POST) /[a-z0-9]{1,12}", report_id="p")
    tables = compile_tables(compiled.network)
    assert 1 <= tables.n_classes <= 256
    signatures = {}
    for byte in range(256):
        signatures.setdefault(tables.byte_class[byte], set()).add(
            tables.match_mask_for(byte)
        )
    # every class maps to exactly one mask, and distinct classes to
    # distinct masks (the partition is as coarse as possible)
    assert all(len(masks) == 1 for masks in signatures.values())
    distinct = {masks.pop() for masks in signatures.values()}
    assert len(distinct) == tables.n_classes


def test_feed_after_finish_raises():
    compiled = compile_pattern("ab", report_id="p")
    scanner = StreamScanner(compiled.network)
    scanner.feed(b"ab")
    scanner.finish()
    with pytest.raises(RuntimeError):
        scanner.feed(b"ab")
    scanner.reset()
    scanner.feed(b"xab")
    assert scanner.finish() == {(3, "p")}
