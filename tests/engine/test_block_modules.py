"""In-sweep counter/bit-vector execution (`engine.block_modules`).

Three layers of proof that module state is exact under vector sweeps:

* analyze-level: which wirings the block scanner absorbs into closed
  forms and which it rejects (the optimistic-rescan fallback);
* chunk-boundary properties: counter registers and bit-vector shift
  registers carry exactly across ``feed()`` splits at **every** split
  point of a matching window, with sweeps committing (zero rescans);
* the disable-streak decay: a module-dense burst turns sweeps off,
  module-quiescent input turns them back on, equivalence holds across
  the whole disable/re-enable arc.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro.engine.block as block_engine
from repro.compiler.pipeline import compile_pattern, compile_ruleset
from repro.engine.block import BlockScanner, BlockSweepStats, _program_for
from repro.engine.scanner import StreamScanner
from repro.engine.tables import compile_tables

pytestmark = pytest.mark.skipif(
    block_engine.numpy_or_none() is None,
    reason="numpy not installed (block backend unavailable)",
)

_TABLES_CACHE: dict = {}


def _tables(pattern):
    tables = _TABLES_CACHE.get(pattern)
    if tables is None:
        tables = compile_tables(compile_pattern(pattern, report_id="p").network)
        _TABLES_CACHE[pattern] = tables
    return tables


def _want(tables, data):
    reference = StreamScanner(tables)
    reference.feed(data)
    return reference.finish(), reference.stats


def _assert_every_split_exact(tables, data, block_size):
    """Feed ``data`` split at every possible point; each split must
    reproduce the one-shot reference exactly, with every sweep
    committing (the whole point of in-lane module execution)."""
    want_reports, want_stats = _want(tables, data)
    for split in range(len(data) + 1):
        scanner = BlockScanner(tables, block_size=block_size)
        scanner.feed(data[:split])
        scanner.feed(data[split:])
        context = (data, split, block_size)
        assert scanner.finish() == want_reports, context
        assert scanner.stats.equivalent(want_stats), context
        sweep = scanner.sweep_stats
        assert sweep.modules_vectorized, context
        assert sweep.rescans == 0, context


class TestAnalyze:
    """Which tables the sweep absorbs vs. rejects."""

    @pytest.mark.parametrize(
        "pattern",
        [r"[^a]a{3,9}", r"b.{2,4}c", r"x[ab]{2,6}y", r"ba{2,2}c"],
    )
    def test_one_ste_loops_vectorize(self, pattern):
        program = _program_for(_tables(pattern))
        assert program.full_ok
        assert any(plan.absorbed is not None for plan in program.mod_plans)

    def test_all_input_bit_vector_runs_free_standing(self):
        # `.` bodies pair with an always-on STE, so the module is not
        # absorbed -- but its lanes still evaluate inside the sweep
        program = _program_for(_tables(r".{3,5}z"))
        assert program.full_ok
        assert all(plan.absorbed is None for plan in program.mod_plans)

    def test_multi_ste_body_falls_back(self):
        # (ab){2,3}: both body STEs drive the counter's fst/lst ports,
        # outside every absorption template -> optimistic path
        program = _program_for(_tables(r"x(ab){2,3}y"))
        assert not program.full_ok
        assert program.vector_ok  # STE graph itself is still fine

    def test_module_free_tables_unchanged(self):
        program = _program_for(_tables(r"abc"))
        assert program.pure and program.full_ok and program.vector_ok
        assert program.mod_plans is None


class TestChunkBoundaryProperties:
    """Satellite: module state carries exactly across feed() splits."""

    @given(
        lo=st.integers(min_value=2, max_value=6),
        extra=st.integers(min_value=0, max_value=3),
        run=st.integers(min_value=1, max_value=9),
        block_size=st.sampled_from([2, 3, 5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_counter_register_across_every_split(self, lo, extra, run, block_size):
        hi = lo + extra
        tables = _tables(f"[^a]a{{{lo},{hi}}}")
        data = b"ca" + b"x" + b"a" * run + b"bc"
        _assert_every_split_exact(tables, data, block_size)

    @given(
        lo=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=0, max_value=3),
        gap=st.integers(min_value=0, max_value=7),
        block_size=st.sampled_from([2, 3, 5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_vector_register_across_every_split(self, lo, extra, gap, block_size):
        hi = lo + extra
        tables = _tables(f"b.{{{lo},{hi}}}c")
        # overlapping b's keep several tokens of different ages alive
        data = b"bb" + b"x" * gap + b"c" + b"b" + b"c"
        _assert_every_split_exact(tables, data, block_size)

    @given(
        lo=st.integers(min_value=2, max_value=5),
        extra=st.integers(min_value=0, max_value=3),
        run=st.integers(min_value=1, max_value=8),
        block_size=st.sampled_from([2, 3, 5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_input_bit_vector_across_every_split(self, lo, extra, run, block_size):
        hi = lo + extra
        tables = _tables(f".{{{lo},{hi}}}z")
        data = b"ab" * run + b"z" + b"az"
        _assert_every_split_exact(tables, data, block_size)

    @given(
        lo=st.integers(min_value=2, max_value=4),
        extra=st.integers(min_value=0, max_value=2),
        block_size=st.sampled_from([2, 3, 5]),
    )
    @settings(max_examples=20, deadline=None)
    def test_mixed_ruleset_across_every_split(self, lo, extra, block_size):
        hi = lo + extra
        key = ("mixed", lo, hi)
        tables = _TABLES_CACHE.get(key)
        if tables is None:
            rules = [
                ("ctr", f"[^a]a{{{lo},{hi}}}"),
                ("gap", f"b.{{{lo},{hi}}}c"),
                ("lit", "abc"),
            ]
            tables = compile_tables(compile_ruleset(rules).network)
            _TABLES_CACHE[key] = tables
        data = b"xa" * hi + b"b" + b"y" * lo + b"cabc"
        _assert_every_split_exact(tables, data, block_size)


class TestSweepStats:
    """Satellite: rescans/commits surfaced, not inferred."""

    def test_zero_rescans_assertable_on_vectorized_modules(self):
        tables = _tables(r"[^a]a{3,9}")
        scanner = BlockScanner(tables, block_size=16)
        scanner.feed(b"xaaaa baaab zaaaaaaaaaz " * 50)
        sweep = scanner.sweep_stats
        assert isinstance(sweep, BlockSweepStats)
        assert sweep.modules_vectorized
        assert sweep.rescans == 0
        assert sweep.committed_blocks > 0
        assert not sweep.sweeps_disabled

    def test_rescans_counted_on_fallback_wiring(self):
        tables = _tables(r"x(ab){2,3}y")
        scanner = BlockScanner(tables, block_size=16)
        scanner.feed(b"xababy" + b"z" * 26)
        sweep = scanner.sweep_stats
        assert not sweep.modules_vectorized
        assert sweep.rescans >= 1
        assert sweep.rescans == scanner._rescans

    def test_reset_clears_sweep_stats(self):
        scanner = BlockScanner(_tables(r"[^a]a{3,9}"), block_size=16)
        scanner.feed(b"xaaaa" * 40)
        assert scanner.sweep_stats.committed_blocks > 0
        scanner.reset()
        sweep = scanner.sweep_stats
        assert sweep.committed_blocks == 0 and sweep.rescans == 0
        assert sweep.reenables == 0 and not sweep.sweeps_disabled


class TestDisableStreakDecay:
    """Satellite: the vector-disable streak decays instead of lasting
    for the stream's lifetime."""

    def test_sweeps_rearm_after_quiescent_blocks(self):
        tables = _tables(r"x(ab){2,3}y")
        block = 16
        scanner = BlockScanner(tables, block_size=block)
        # module-dense phase: every sweep aborts until the streak trips
        dense = b"xababy xabababy " * 64
        scanner.feed(dense)
        assert scanner.sweep_stats.sweeps_disabled
        # module-quiescent phase: after _REENABLE_AFTER clean blocks
        # the scanner must start sweeping again
        quiet = b"z" * (block_engine._REENABLE_AFTER * block + block)
        scanner.feed(quiet)
        sweep = scanner.sweep_stats
        assert not sweep.sweeps_disabled
        assert sweep.reenables == 1
        committed_before = sweep.committed_blocks
        scanner.feed(b"z" * (4 * block))
        assert scanner.sweep_stats.committed_blocks > committed_before

    def test_module_activity_resets_the_quiescence_clock(self):
        tables = _tables(r"x(ab){2,3}y")
        block = 16
        scanner = BlockScanner(tables, block_size=block)
        scanner.feed(b"xababy xabababy " * 64)
        assert scanner.sweep_stats.sweeps_disabled
        # keep poking the counter inside every would-be-quiet window:
        # the decay clock must never reach the re-enable threshold
        for _ in range(8):
            scanner.feed(b"xab" + b"z" * (block - 3))
        sweep = scanner.sweep_stats
        assert sweep.sweeps_disabled
        assert sweep.reenables == 0

    def test_equivalence_across_disable_and_reenable(self):
        tables = _tables(r"x(ab){2,3}y")
        block = 16
        data = (
            b"xababy xabababy " * 64  # disable
            + b"z" * (block_engine._REENABLE_AFTER * block + block)  # re-arm
            + b"xababy" + b"z" * 40  # post-re-enable matches
        )
        want_reports, want_stats = _want(tables, data)
        scanner = BlockScanner(tables, block_size=block)
        for offset in range(0, len(data), 48):
            scanner.feed(data[offset : offset + 48])
        assert scanner.finish() == want_reports
        assert scanner.stats.equivalent(want_stats)
        assert scanner.sweep_stats.reenables >= 1
