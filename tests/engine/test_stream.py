"""Chunk-boundary streaming semantics.

Property: ``scan_stream`` over *any* chunking of a stream equals
``scan`` over the concatenated buffer -- including ``^``/``$``-anchored
rules, nullable rules, and matches whose counter/bit-vector state spans
a chunk boundary.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.matching import RulesetMatcher

#: rules chosen so that chunk boundaries can fall inside counter runs,
#: bit-vector gaps, and anchored matches
RULES = [
    ("lit", r"abc"),
    ("start", r"^ab"),
    ("end", r"bc$"),
    ("nullable", r"c*"),
    ("counter", r"[^a]a{3,5}"),
    ("gap", r"b.{2,4}c"),
    ("exact", r"^[abc]{4}$"),
]

_MATCHERS: dict = {}


def matcher() -> RulesetMatcher:
    # module-level cache: compilation dominates test time otherwise
    if "m" not in _MATCHERS:
        _MATCHERS["m"] = RulesetMatcher(RULES)
    return _MATCHERS["m"]


def chunkings(data: bytes, cuts: list[int]) -> list[bytes]:
    points = sorted({min(c, len(data)) for c in cuts})
    chunks = []
    prev = 0
    for point in points:
        chunks.append(data[prev:point])
        prev = point
    chunks.append(data[prev:])
    return chunks


small_data = st.lists(
    st.sampled_from(list(b"abcx")), max_size=40
).map(bytes)


@given(
    data=small_data,
    cuts=st.lists(st.integers(min_value=0, max_value=40), max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_any_chunking_equals_single_buffer(data, cuts):
    m = matcher()
    whole = m.scan(data)
    chunked = m.scan_stream(chunkings(data, cuts))
    assert chunked == whole


@given(data=small_data)
@settings(max_examples=40, deadline=None)
def test_byte_at_a_time_equals_single_buffer(data):
    m = matcher()
    whole = m.scan(data)
    drip = m.scan_stream(bytes([b]) for b in data)
    assert drip == whole


def test_counter_run_across_boundary():
    m = matcher()
    # the a{3,5} run straddles the cut: counter state must carry over
    result = m.scan_stream([b"xaa", b"aaz"])
    assert result.matches["counter"] == m.scan(b"xaaaaz").matches["counter"]
    assert 5 in result.matches["counter"]


def test_end_anchor_gated_at_stream_end_only():
    m = matcher()
    # 'bc' occurs mid-stream and at the end; only the final occurrence
    # survives the $ gate, and gating happens at finish() time
    result = m.scan_stream([b"abc", b"x", b"abc"])
    assert result.matches["end"] == [7]
    assert m.scan(b"abcxabc").matches["end"] == [7]


def test_start_anchor_only_fires_on_first_chunk():
    m = matcher()
    result = m.scan_stream([b"ab", b"ab"])
    assert result.matches["start"] == [2]


def test_nullable_rule_never_reports():
    m = matcher()
    assert "nullable" not in m.scan_stream([b"ab", b"ab"]).matches
    assert m.empty_match_rules() == {"nullable"}


def test_empty_chunks_are_harmless():
    m = matcher()
    assert m.scan_stream([b"", b"abc", b"", b""]) == m.scan(b"abc")


def test_str_chunks_accepted():
    m = matcher()
    assert m.scan_stream(["ab", "c"]).matches["lit"] == [3]


def test_bytearray_and_memoryview_chunks_accepted():
    """Every bytes-like flavour behaves identically in the streaming
    path (not just the one-shot scan_bytes special case)."""
    m = matcher()
    want = m.scan(b"xabcx").matches
    assert m.scan_stream([bytearray(b"xab"), bytearray(b"cx")]).matches == want
    assert m.scan_stream([memoryview(b"xab"), memoryview(b"cx")]).matches == want
    assert m.scan(bytearray(b"xabcx")).matches == want
    assert m.scan(memoryview(b"xabcx")).matches == want
    # non-contiguous views are recast via copy, not rejected
    strided = memoryview(b"xxaxbxcxxx")[::2]
    assert m.scan(strided).matches == m.scan(b"xabcx").matches


def test_mixed_chunk_flavours_in_one_stream():
    m = matcher()
    chunks = [b"xa", bytearray(b"b"), memoryview(b"c"), "x"]
    assert m.scan_stream(chunks).matches == m.scan(b"xabcx").matches


def test_non_latin1_str_raises_clear_value_error():
    """A bare UnicodeEncodeError out of the scanner guts is a bug; the
    error must say what to do instead (pass bytes)."""
    from repro.engine.scanner import StreamScanner

    m = matcher()
    for trigger in (
        lambda: m.scan("caf€"),
        lambda: m.scan_stream(["ab", "€"]),
        lambda: StreamScanner(m.tables).feed("☃"),
    ):
        with pytest.raises(ValueError, match="latin-1.*pass\\s+bytes") as exc_info:
            trigger()
        assert not isinstance(exc_info.value, UnicodeEncodeError)


def test_non_bytes_chunk_raises_type_error():
    m = matcher()
    with pytest.raises(TypeError, match="bytes-like or str"):
        m.scan(12345)


def test_stream_energy_matches_single_buffer():
    m = matcher()
    data = b"xaaaab" * 50
    assert (
        m.scan_stream([data[:73], data[73:]]).energy_nj_per_byte
        == m.scan(data).energy_nj_per_byte
    )
