"""Sharded and batch scanning front-ends."""

import pytest

from repro.engine.parallel import ShardedMatcher, merge_scan_results, shard_rules
from repro.matching import RulesetMatcher, ScanResult

RULES = [
    ("r0", r"abc"),
    ("r1", r"[0-9]{3,6}"),
    ("r2", r"xyz$"),
    ("r3", r"^GET"),
    ("r4", r"a.{2,4}z"),
]

DATA = b"GET /abc 12345 aXXz ... xyz"


class TestShardRules:
    def test_round_robin(self):
        buckets = shard_rules(RULES, 2)
        assert buckets[0] == [RULES[0], RULES[2], RULES[4]]
        assert buckets[1] == [RULES[1], RULES[3]]

    def test_bare_strings_get_compile_ruleset_ids(self):
        buckets = shard_rules(["abc", "def", "ghi"], 2)
        assert buckets[0] == [("rule0", "abc"), ("rule2", "ghi")]
        assert buckets[1] == [("rule1", "def")]

    def test_more_shards_than_rules(self):
        buckets = shard_rules(RULES, 10)
        assert sum(len(b) for b in buckets) == len(RULES)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_rules(RULES, 0)


class TestMerge:
    def test_union_and_energy_sum(self):
        a = ScanResult(10, {"x": [1, 3]}, 0.5)
        b = ScanResult(10, {"x": [3, 5], "y": [2]}, 0.25)
        merged = merge_scan_results([a, b])
        assert merged.matches == {"x": [1, 3, 5], "y": [2]}
        assert merged.energy_nj_per_byte == 0.75
        assert merged.bytes_scanned == 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_scan_results([ScanResult(1), ScanResult(2)])

    def test_empty_merge_is_the_neutral_result(self):
        # the cluster scatter-gather path folds whatever shard subset
        # responded; zero shards must merge to the zero result, not raise
        merged = merge_scan_results([])
        assert merged.bytes_scanned == 0
        assert merged.matches == {}
        assert merged.energy_nj_per_byte == 0.0
        assert merged.compile_info is None

    def test_one_element_merge_is_identity(self):
        one = ScanResult(10, {"x": [1, 3]}, 0.5)
        merged = merge_scan_results([one])
        assert merged == one
        assert merged.matches == {"x": [1, 3]}

    def test_empty_merges_as_identity_element(self):
        # merging the neutral result into a real one must not change it
        real = ScanResult(7, {"x": [2]}, 0.25)
        with pytest.raises(ValueError):
            # ... but stream lengths still have to agree (0 != 7): the
            # identity only applies to the empty *list*, never to mixing
            # results from different streams
            merge_scan_results([merge_scan_results([]), real])


class TestMergeCompileInfo:
    def test_merge_scan_results_merges_compile_info(self):
        from repro.matching import CompileInfo

        info_a = CompileInfo(cache_hit=True, seconds=0.5, opt_level=0)
        info_b = CompileInfo(cache_hit=False, seconds=0.25, opt_level=1)
        a = ScanResult(10, {"x": [1]}, 0.5, compile_info=info_a)
        b = ScanResult(10, {"y": [2]}, 0.25, compile_info=info_b)
        merged = merge_scan_results([a, b])
        assert merged.compile_info is not None
        assert merged.compile_info.seconds == 0.75
        assert not merged.compile_info.cache_hit  # one shard was cold
        assert merged.compile_info.opt_level == 1

    def test_merge_without_info_stays_none(self):
        merged = merge_scan_results([ScanResult(5), ScanResult(5)])
        assert merged.compile_info is None

    def test_sharded_scan_surfaces_merged_timing(self):
        matcher = ShardedMatcher(RULES, shards=3)
        result = matcher.scan(DATA)
        assert result.compile_info is not None
        assert result.compile_info.seconds == pytest.approx(
            sum(info.seconds for info in matcher.compile_infos)
        )
        assert matcher.compile_info.seconds == result.compile_info.seconds
        assert not result.compile_info.cache_hit  # fresh compiles

    def test_sharded_all_warm_reports_cache_hit(self, tmp_path):
        rules = [("r0", "abc"), ("r1", "def")]
        cold = ShardedMatcher(rules, shards=2, cache_dir=str(tmp_path))
        assert not cold.compile_info.cache_hit
        warm = ShardedMatcher(rules, shards=2, cache_dir=str(tmp_path))
        assert warm.compile_info.cache_hit
        assert warm.scan(b"zabc").compile_info.cache_hit

    def test_compile_info_excluded_from_result_equality(self, tmp_path):
        rules = [("r0", "abc")]
        cold = RulesetMatcher(rules, cache_dir=str(tmp_path))
        warm = RulesetMatcher(rules, cache_dir=str(tmp_path))
        assert cold.compile_info.seconds != warm.compile_info.seconds
        # same scan, equal results, regardless of compile provenance
        assert cold.scan(b"zabc") == warm.scan(b"zabc")


class TestShardedMatcher:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_scan_equals_unsharded(self, shards):
        baseline = RulesetMatcher(RULES).scan(DATA)
        sharded = ShardedMatcher(RULES, shards=shards).scan(DATA)
        assert sharded.matches == baseline.matches
        assert sharded.bytes_scanned == baseline.bytes_scanned

    def test_scan_stream_equals_scan(self):
        matcher = ShardedMatcher(RULES, shards=2)
        assert (
            matcher.scan_stream([DATA[:7], DATA[7:20], DATA[20:]]).matches
            == matcher.scan(DATA).matches
        )

    def test_resources_aggregate(self):
        whole = RulesetMatcher(RULES).resources()
        sharded = ShardedMatcher(RULES, shards=2).resources()
        assert sharded.rules_compiled == whole.rules_compiled
        assert sharded.stes == whole.stes
        assert sharded.counters == whole.counters
        assert sharded.bit_vectors == whole.bit_vectors
        assert sharded.area_mm2 > 0

    def test_skipped_aggregates(self):
        rules = RULES + [("bad", r"(a)\1")]
        matcher = ShardedMatcher(rules, shards=3)
        assert [rule_id for rule_id, _ in matcher.skipped] == ["bad"]

    def test_energy_positive(self):
        assert ShardedMatcher(RULES, shards=2).scan(DATA).energy_nj_per_byte > 0


class TestScanMany:
    STREAMS = [DATA, b"no hits here", b"9999", b"", b"abc xyz"]

    def test_serial_equals_per_stream_scan(self):
        matcher = RulesetMatcher(RULES)
        batch = matcher.scan_many(self.STREAMS)
        assert batch == [matcher.scan(s) for s in self.STREAMS]

    def test_processes_equal_serial(self):
        # falls back to serial automatically where pools cannot start,
        # so this asserts result equality either way
        matcher = RulesetMatcher(RULES)
        assert matcher.scan_many(self.STREAMS, processes=2) == matcher.scan_many(
            self.STREAMS
        )

    def test_sharded_scan_many(self):
        matcher = ShardedMatcher(RULES, shards=2)
        batch = matcher.scan_many(self.STREAMS)
        assert [r.matches for r in batch] == [
            matcher.scan(s).matches for s in self.STREAMS
        ]

    def test_sharded_scan_many_processes(self):
        matcher = ShardedMatcher(RULES, shards=2)
        assert matcher.scan_many(self.STREAMS, processes=2) == matcher.scan_many(
            self.STREAMS
        )
